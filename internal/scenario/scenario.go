package scenario

import (
	"fmt"
	"strings"
	"time"

	"wanac/internal/core"
	"wanac/internal/simnet"
	"wanac/internal/telemetry"
)

// DefaultTe is the revocation bound used when a scenario doesn't set one.
const DefaultTe = 60 * time.Second

// Break selects deliberate protocol misconfigurations (mirroring
// harness.Options) so a scenario can demonstrate a known failure shape —
// the catalog's stale-allow-demo uses both to reproduce partition →
// stale-allow with a flight-dump artifact.
type Break struct {
	// InflateTe makes managers hand out grants valid for 10×Te while hosts
	// and oracles still assume Te.
	InflateTe bool
	// DropRevokeNotices silently discards every RevokeNotice on the wire.
	DropRevokeNotices bool
}

func (b Break) broken() bool { return b.InflateTe || b.DropRevokeNotices }

// Scenario is one named, fully specified simulation: a topology, a load
// shape, a population, fault injections, and the policy under test. Build
// one with New and the With* chain; run it with Run. A scenario plus a seed
// is a pure function — replaying the pair reproduces the identical Result.
type Scenario struct {
	Name    string
	Summary string

	Topology   Topology
	Policy     core.Policy // zero CheckQuorum selects Balanced(M, Te)
	Te         time.Duration
	Load       Curve
	Population Population
	Faults     []Fault

	// Duration is the traffic horizon; the runner appends a settle tail
	// (harness.Settle) so in-flight work and post-heal probes resolve.
	Duration time.Duration
	// AdminEvery, when positive, runs revoke→measure→re-grant churn on the
	// authorized users at this interval, producing the revocation-lag
	// distribution. Zero disables churn.
	AdminEvery time.Duration
	// CacheLimit bounds host caches (0 = unbounded), enforced by the
	// cache-hygiene oracle.
	CacheLimit int
	// Loss is the ambient per-message drop probability.
	Loss float64
	// Seed is the default seed used by `acsim run` and the catalog tests.
	Seed int64
	// Break injects deliberate bugs; see Break.
	Break Break

	// Overload is the manager-side admission-control configuration (token
	// buckets, adaptive Te, Retry-After clamp). The zero value runs
	// unprotected.
	Overload core.OverloadConfig
	// Capacity, when its ServiceTime is positive, gives every manager a
	// finite-rate server with a bounded two-lane inbound queue
	// (simnet.Capacity), so a check flood creates genuine manager overload
	// instead of being absorbed instantaneously.
	Capacity simnet.Capacity
	// Telemetry, when non-nil, instruments every node against this
	// registry, exactly as a live deployment would; the overload tests
	// assert the exported counters match the Result's totals.
	Telemetry *telemetry.Registry
}

// New starts a scenario definition.
func New(name, summary string) *Scenario {
	return &Scenario{
		Name:     name,
		Summary:  summary,
		Topology: Atlantic3(),
		Load:     Steady{RPS: 5},
		Duration: 2 * time.Minute,
		Seed:     1,
	}
}

// WithTopology places the deployment.
func (s *Scenario) WithTopology(t Topology) *Scenario { s.Topology = t; return s }

// WithPolicy sets the host-side policy. The scenario's Te overrides the
// policy's (they must agree for the oracle bound to be meaningful).
func (s *Scenario) WithPolicy(p core.Policy) *Scenario { s.Policy = p; return s }

// WithTe sets the revocation bound.
func (s *Scenario) WithTe(te time.Duration) *Scenario { s.Te = te; return s }

// WithLoad sets the arrival curve.
func (s *Scenario) WithLoad(c Curve) *Scenario { s.Load = c; return s }

// WithPopulation sets who the traffic is for.
func (s *Scenario) WithPopulation(p Population) *Scenario { s.Population = p; return s }

// WithFaults appends fault injections.
func (s *Scenario) WithFaults(f ...Fault) *Scenario { s.Faults = append(s.Faults, f...); return s }

// For sets the traffic horizon.
func (s *Scenario) For(d time.Duration) *Scenario { s.Duration = d; return s }

// WithAdminChurn enables revoke/re-grant churn at the given interval.
func (s *Scenario) WithAdminChurn(every time.Duration) *Scenario { s.AdminEvery = every; return s }

// WithCacheLimit bounds host caches.
func (s *Scenario) WithCacheLimit(n int) *Scenario { s.CacheLimit = n; return s }

// WithLoss sets ambient message loss.
func (s *Scenario) WithLoss(p float64) *Scenario { s.Loss = p; return s }

// WithSeed sets the default seed.
func (s *Scenario) WithSeed(seed int64) *Scenario { s.Seed = seed; return s }

// WithBreak injects deliberate protocol bugs.
func (s *Scenario) WithBreak(b Break) *Scenario { s.Break = b; return s }

// WithOverload sets the manager-side admission-control configuration.
func (s *Scenario) WithOverload(o core.OverloadConfig) *Scenario { s.Overload = o; return s }

// WithManagerCapacity installs a finite-capacity server on every manager.
func (s *Scenario) WithManagerCapacity(c simnet.Capacity) *Scenario { s.Capacity = c; return s }

// WithTelemetry instruments every node against reg.
func (s *Scenario) WithTelemetry(reg *telemetry.Registry) *Scenario { s.Telemetry = reg; return s }

// te returns the effective revocation bound.
func (s *Scenario) te() time.Duration {
	if s.Te > 0 {
		return s.Te
	}
	return DefaultTe
}

// oracleTe returns the revocation bound the oracles must hold the run to:
// with the adaptive-Te controller enabled, managers may legally widen grant
// expiry up to AdaptiveTe.Max, so that cap — not the base Te — is the
// promise the deployment makes.
func (s *Scenario) oracleTe() time.Duration {
	if m := s.Overload.AdaptiveTe.Max; m > s.te() {
		return m
	}
	return s.te()
}

// policy returns the effective host policy with the scenario's Te applied.
func (s *Scenario) policy() core.Policy {
	p := s.Policy
	if p.CheckQuorum == 0 {
		p = core.Balanced(s.Topology.Managers(), s.te())
	}
	p.Te = s.te()
	return p
}

// validate rejects scenario definitions the runner cannot honor.
func (s *Scenario) validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Topology.Managers() < 1 {
		return fmt.Errorf("scenario %s: topology has no managers", s.Name)
	}
	if s.Load == nil {
		return fmt.Errorf("scenario %s: no load curve", s.Name)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: non-positive duration", s.Name)
	}
	for _, f := range s.Faults {
		at, dur := f.Window()
		if at+dur > s.Duration {
			return fmt.Errorf("scenario %s: fault %q ends at %s, after the %s horizon",
				s.Name, f.Describe(), at+dur, s.Duration)
		}
	}
	return nil
}

// FaultSummary renders the fault shapes on one line ("none" when clean).
func (s *Scenario) FaultSummary() string {
	if len(s.Faults) == 0 {
		return "none"
	}
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.Describe()
	}
	return strings.Join(parts, "; ")
}

// String renders the full definition for `acsim run` transcripts.
func (s *Scenario) String() string {
	p := s.policy()
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %s\n", s.Name, s.Summary)
	fmt.Fprintf(&b, "  topology:   %s\n", s.Topology)
	fmt.Fprintf(&b, "  policy:     M=%d C=%d Te=%s R=%d default-allow=%v\n",
		s.Topology.Managers(), p.CheckQuorum, p.Te, p.MaxAttempts, p.DefaultAllow)
	fmt.Fprintf(&b, "  load:       %s, %s\n", s.Load.Describe(), s.Population.Describe())
	fmt.Fprintf(&b, "  faults:     %s\n", s.FaultSummary())
	fmt.Fprintf(&b, "  duration:   %s (+settle)", s.Duration)
	if s.AdminEvery > 0 {
		fmt.Fprintf(&b, ", admin churn every %s", s.AdminEvery)
	}
	if s.CacheLimit > 0 {
		fmt.Fprintf(&b, ", cache limit %d", s.CacheLimit)
	}
	if s.Loss > 0 {
		fmt.Fprintf(&b, ", loss %.2g", s.Loss)
	}
	if s.Capacity.ServiceTime > 0 {
		fmt.Fprintf(&b, "\n  capacity:   service=%s queue=%d lane=%d fifo=%v",
			s.Capacity.ServiceTime, s.Capacity.QueueDepth, s.Capacity.LaneDepth, s.Capacity.FIFO)
	}
	if rl := s.Overload.RateLimit; rl != (core.RateLimitConfig{}) {
		fmt.Fprintf(&b, "\n  admission:  app=%g/%g host=%g/%g (rps/burst)",
			rl.AppRPS, rl.AppBurst, rl.HostRPS, rl.HostBurst)
	}
	if at := s.Overload.AdaptiveTe; at.Max > 0 {
		fmt.Fprintf(&b, "\n  adaptive-te: max=%s interval=%s", at.Max, at.Interval)
	}
	if s.Break.broken() {
		fmt.Fprintf(&b, "\n  BROKEN:     inflate-te=%v drop-revoke-notices=%v",
			s.Break.InflateTe, s.Break.DropRevokeNotices)
	}
	return b.String()
}
