package scenario

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"wanac/internal/core"
	"wanac/internal/flight"
	"wanac/internal/harness"
	"wanac/internal/sim"
	"wanac/internal/simnet"
	"wanac/internal/wire"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 8 {
		t.Fatalf("catalog has %d scenarios, want >= 8", len(cat))
	}
	seen := map[string]bool{}
	for _, sc := range cat {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Name, err)
		}
		if sc.Summary == "" {
			t.Errorf("scenario %s has no summary", sc.Name)
		}
		got, err := Lookup(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Errorf("Lookup(%q) = %v, %v", sc.Name, got, err)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup of unknown scenario succeeded")
	}
}

// resultKey projects the replay-relevant fields of a Result for equality
// checks (the Flight pointer and artifact path are excluded).
func resultKey(r *Result) Result {
	return Result{
		Name: r.Name, Seed: r.Seed,
		Checks: r.Checks, Decisions: r.Decisions,
		Allowed: r.Allowed, Denied: r.Denied, DefaultAllowed: r.DefaultAllowed,
		Revocations: r.Revocations, RevocationLags: r.RevocationLags,
		RevocationLagP99: r.RevocationLagP99,
		Oracles:          r.Oracles, Violations: r.Violations,
		Net: r.Net,
	}
}

func TestScenarioDeterminism(t *testing.T) {
	sc, err := Lookup("steady-baseline")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultKey(a), resultKey(b)) {
		t.Fatalf("same (scenario, seed) diverged:\n%+v\nvs\n%+v", resultKey(a), resultKey(b))
	}
	c, err := Run(sc, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checks == c.Checks && a.Net.Sent == c.Net.Sent {
		t.Error("different seeds produced an identical run (suspicious)")
	}
}

// TestCIFastScenarios is the CI scenario gate (scripts/ci.sh `scenario`
// suite): three fast catalog runs that must keep all four oracles clean.
func TestCIFastScenarios(t *testing.T) {
	for _, name := range []string{"steady-baseline", "oneway-blackout", "revoke-under-partition"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				for _, v := range res.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("scenario %s violated its oracles", name)
			}
			if len(res.Oracles) != 5 {
				t.Fatalf("attached %d oracles, want 5: %+v", len(res.Oracles), res.Oracles)
			}
			if res.Decisions == 0 {
				t.Fatal("scenario decided nothing")
			}
			if res.Allowed == 0 {
				t.Fatal("no confirmed allows: scenario exercised nothing")
			}
		})
	}
}

// TestFullCatalogRuns executes every catalog scenario at its default seed:
// all four oracles attach and observe traffic, and every scenario runs
// clean except the deliberately broken one, which must fail.
func TestFullCatalogRuns(t *testing.T) {
	for _, sc := range Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Oracles) != 5 {
				t.Fatalf("attached %d oracles, want 5", len(res.Oracles))
			}
			if res.Decisions == 0 {
				t.Fatal("scenario decided nothing")
			}
			if sc.Break.broken() {
				if !res.Failed() {
					t.Fatal("broken scenario ran clean")
				}
				return
			}
			if res.Failed() {
				for _, v := range res.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("scenario %s violated its oracles", sc.Name)
			}
		})
	}
}

// TestStaleAllowDemo pins the catalog's deliberately broken scenario: the
// revocation-safety oracle must fire, and the flight dump artifact must be
// written and re-readable with the violation marks on the timeline.
func TestStaleAllowDemo(t *testing.T) {
	t.Setenv("WANAC_ARTIFACTS", t.TempDir())
	sc, err := Lookup("stale-allow-demo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("broken scenario ran clean; expected revocation-safety violations")
	}
	revViolations, auditViolations, staleGrant := 0, 0, 0
	for _, v := range res.Violations {
		switch v.Oracle {
		case harness.OracleRevocation:
			revViolations++
		case harness.OracleAudit:
			auditViolations++
			if strings.Contains(v.Detail, "beyond the revocation bound") {
				staleGrant++
			}
		}
	}
	if revViolations == 0 {
		t.Fatalf("no revocation-safety violations; got %+v", res.Violations)
	}
	// The audit trail must make the same leak self-explaining: records that
	// cite grants outliving the configured te (the inflated bound is the
	// injected bug) surface as audit-completeness violations.
	if auditViolations == 0 {
		t.Fatalf("audit oracle silent on the stale-allow leak; got %+v", res.Violations)
	}
	if staleGrant == 0 {
		t.Fatalf("no audit record cited a grant beyond the revocation bound; got %+v", res.Violations)
	}
	if res.Flight == nil {
		t.Fatal("failed run produced no flight dump")
	}
	path, err := WriteFlightArtifact(res)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" || res.FlightPath != path {
		t.Fatalf("artifact path not recorded: %q vs %q", path, res.FlightPath)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dump, err := flight.ReadDump(f)
	if err != nil {
		t.Fatalf("artifact unreadable: %v", err)
	}
	marks := 0
	for _, rec := range dump.Records {
		if rec.Kind == flight.KindMark && rec.Type == "oracle-violation" {
			marks++
		}
	}
	if marks != len(res.Violations) {
		t.Fatalf("artifact has %d violation marks, want %d", marks, len(res.Violations))
	}
}

// TestOneWayFailover exercises the paper's query protocol under an
// asymmetric cut at the protocol level: the host's first round goes to m0
// (C=1, fresh rotation), whose replies are severed — the host can send but
// never hears back, so the round must time out and the retry round must
// widen to the remaining managers and succeed.
func TestOneWayFailover(t *testing.T) {
	w, err := sim.Build(sim.Config{
		Managers: 3,
		Hosts:    1,
		Policy:   core.Policy{CheckQuorum: 1, Te: time.Minute, MaxAttempts: 3},
		Te:       time.Minute,
		Users:    []wire.UserID{"u0"},
		Net:      simnet.Config{Latency: simnet.Fixed{D: 10 * time.Millisecond}, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sever only m0→h0: queries still reach m0, replies vanish.
	w.Net.PartitionOneWay([]wire.NodeID{"m0"}, []wire.NodeID{"h0"})
	if !w.Net.Linked("h0", "m0") {
		t.Fatal("h0→m0 should remain up (one-way cut)")
	}

	d, ok := w.CheckSync(0, "u0", wire.RightUse, 30*time.Second)
	if !ok {
		t.Fatal("check never decided")
	}
	if !d.Allowed || d.DefaultAllowed {
		t.Fatalf("check not confirmed after failover: %+v", d)
	}
	if d.Attempts < 2 {
		t.Fatalf("decided in %d attempts; the severed first round should have timed out", d.Attempts)
	}
	st := w.Hosts[0].Stats()
	if st.QueryTimeouts == 0 {
		t.Fatalf("no query timeouts recorded: %+v", st)
	}
}

// TestOneWayScenarioOracleRun is the oracle-backed end of the failover
// satellite: the catalog's oneway-blackout scenario (manager replies
// severed toward a host region mid-run) must keep all four oracles clean
// while still confirming accesses during the blackout.
func TestOneWayScenarioOracleRun(t *testing.T) {
	sc, err := Lookup("oneway-blackout")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		for _, v := range res.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal("oneway-blackout violated its oracles")
	}
	if res.Allowed == 0 {
		t.Fatal("no confirmed allows during the scenario")
	}
}

func TestCurves(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

	d := Diurnal{Base: 2, Peak: 12, Period: 2 * time.Minute}
	if r := d.Rate(0); !approx(r, 2) {
		t.Errorf("diurnal trough = %g, want 2", r)
	}
	if r := d.Rate(time.Minute); !approx(r, 12) {
		t.Errorf("diurnal peak = %g, want 12", r)
	}
	if r := d.Rate(2 * time.Minute); !approx(r, 2) {
		t.Errorf("diurnal full period = %g, want 2", r)
	}

	f := FlashCrowd{Base: 3, Peak: 40, At: 60 * time.Second,
		Rise: 10 * time.Second, Sustain: 30 * time.Second, Fall: 20 * time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 3},
		{59 * time.Second, 3},
		{65 * time.Second, 21.5}, // halfway up the ramp
		{70 * time.Second, 40},
		{99 * time.Second, 40},
		{110 * time.Second, 21.5}, // halfway down
		{3 * time.Minute, 3},
	}
	for _, tc := range cases {
		if r := f.Rate(tc.at); !approx(r, tc.want) {
			t.Errorf("flash crowd at %s = %g, want %g", tc.at, r, tc.want)
		}
	}

	if r := (Steady{RPS: 7}).Rate(time.Hour); !approx(r, 7) {
		t.Errorf("steady = %g, want 7", r)
	}
}

func TestTopologyPlacement(t *testing.T) {
	topo := Atlantic3()
	if got := topo.Managers(); got != 3 {
		t.Fatalf("managers = %d, want 3", got)
	}
	if got := topo.Hosts(); got != 5 {
		t.Fatalf("hosts = %d, want 5", got)
	}
	// Placement is region by region in declaration order.
	if got := topo.RegionOf("m0"); got != USEast {
		t.Errorf("m0 in %q, want %s", got, USEast)
	}
	if got := topo.RegionOf("m1"); got != EUWest {
		t.Errorf("m1 in %q, want %s", got, EUWest)
	}
	if got := topo.RegionOf("h2"); got != EUWest {
		t.Errorf("h2 in %q, want %s", got, EUWest)
	}
	if got := topo.RegionOf("h4"); got != EUCentral {
		t.Errorf("h4 in %q, want %s", got, EUCentral)
	}
	if got := topo.RegionOf("stranger"); got != "" {
		t.Errorf("unknown node in %q, want empty", got)
	}
	if got := topo.ManagersIn(EUWest); len(got) != 1 || got[0] != "m1" {
		t.Errorf("ManagersIn(eu-west) = %v", got)
	}
	if got := topo.HostsIn(USEast); len(got) != 2 || got[0] != "h0" || got[1] != "h1" {
		t.Errorf("HostsIn(us-east) = %v", got)
	}

	// The matrix prices directions asymmetrically around the baseline.
	m := topo.Matrix()
	fwd := m.Link("m0", "m1") // us-east → eu-west: lexicographically later source, fast skew
	rev := m.Link("m1", "m0") // eu-west → us-east: slow skew
	fln, ok := fwd.(simnet.LogNormal)
	if !ok {
		t.Fatalf("matrix model is %T, want LogNormal", fwd)
	}
	rln := rev.(simnet.LogNormal)
	base := BaseDelay(USEast, EUWest)
	if fln.Scale >= base || rln.Scale <= base {
		t.Errorf("asymmetry wrong: fwd=%v rev=%v base=%v", fln.Scale, rln.Scale, base)
	}
	if fln.Scale == rln.Scale {
		t.Error("directions priced identically")
	}
}
