package scenario

import (
	"fmt"
	"time"

	"wanac/internal/simnet"
	"wanac/internal/wire"
)

// Fault is one scheduled failure injection. Implementations schedule their
// begin/end callbacks on the runtime's scheduler; the runtime tracks open
// fault windows so availability probes only arm once the network is quiet.
type Fault interface {
	// Describe names the fault for scenario listings.
	Describe() string
	// Window returns when the fault starts and how long its (first) window
	// lasts, for validation against the scenario horizon.
	Window() (at, dur time.Duration)
	// schedule arms the fault's callbacks.
	schedule(r *runtime)
}

// Role selects which of a region's nodes a fault touches.
type Role int

// Role values.
const (
	All Role = iota
	Managers
	Hosts
)

func (ro Role) String() string {
	switch ro {
	case Managers:
		return "managers"
	case Hosts:
		return "hosts"
	default:
		return "all"
	}
}

// Nodes selects nodes by region and role for directional faults.
type Nodes struct {
	Region string
	Role   Role
}

func (s Nodes) ids(t Topology) []wire.NodeID {
	switch s.Role {
	case Managers:
		return t.ManagersIn(s.Region)
	case Hosts:
		return t.HostsIn(s.Region)
	default:
		return t.NodesIn(s.Region)
	}
}

func (s Nodes) String() string {
	if s.Role == All {
		return s.Region
	}
	return s.Region + "/" + s.Role.String()
}

// RegionPartition isolates every node in Region from the rest of the world
// for the window [At, At+For): the classic full partition, region-shaped.
type RegionPartition struct {
	Region string
	At     time.Duration
	For    time.Duration
}

// Describe implements Fault.
func (f RegionPartition) Describe() string {
	return fmt.Sprintf("partition %s @%s for %s", f.Region, f.At, f.For)
}

// Window implements Fault.
func (f RegionPartition) Window() (time.Duration, time.Duration) { return f.At, f.For }

func (f RegionPartition) schedule(r *runtime) {
	inside := r.sc.Topology.NodesIn(f.Region)
	outside := excluding(r.sc.Topology.AllNodes(), inside)
	r.w.Sched.After(f.At, func() {
		r.beginFault(f.Describe())
		r.w.Net.Partition(inside, outside)
	})
	r.w.Sched.After(f.At+f.For, func() {
		// Restore pairwise (not Heal) so overlapping faults stay cut.
		for _, a := range inside {
			for _, b := range outside {
				r.w.Net.SetLink(a, b, true)
			}
		}
		r.endFault()
	})
}

// OneWayPartition severs only the From→To direction between two node
// selections: From's messages vanish while To's still arrive — the
// asymmetric-routing gray failure. A host behind one (as To→From's target)
// can still send queries it will never hear answered.
type OneWayPartition struct {
	From, To Nodes
	At       time.Duration
	For      time.Duration
}

// Describe implements Fault.
func (f OneWayPartition) Describe() string {
	return fmt.Sprintf("oneway %s→%s cut @%s for %s", f.From, f.To, f.At, f.For)
}

// Window implements Fault.
func (f OneWayPartition) Window() (time.Duration, time.Duration) { return f.At, f.For }

func (f OneWayPartition) schedule(r *runtime) {
	from := f.From.ids(r.sc.Topology)
	to := f.To.ids(r.sc.Topology)
	r.w.Sched.After(f.At, func() {
		r.beginFault(f.Describe())
		r.w.Net.PartitionOneWay(from, to)
	})
	r.w.Sched.After(f.At+f.For, func() {
		r.w.Net.RestoreOneWay(from, to)
		r.endFault()
	})
}

// SlowLinks stretches every link between two regions by Factor (both
// directions) for the window: slow-but-not-dead, the gray failure that
// times out queries without tripping any liveness detector.
type SlowLinks struct {
	A, B   string
	Factor float64
	At     time.Duration
	For    time.Duration
}

// Describe implements Fault.
func (f SlowLinks) Describe() string {
	return fmt.Sprintf("slow %s↔%s ×%.3g @%s for %s", f.A, f.B, f.Factor, f.At, f.For)
}

// Window implements Fault.
func (f SlowLinks) Window() (time.Duration, time.Duration) { return f.At, f.For }

func (f SlowLinks) schedule(r *runtime) {
	as := r.sc.Topology.NodesIn(f.A)
	bs := r.sc.Topology.NodesIn(f.B)
	matrix := r.matrix
	r.w.Sched.After(f.At, func() {
		r.beginFault(f.Describe())
		forEachPair(as, bs, func(x, y wire.NodeID) {
			// Stretch the link's own geographic model so the degraded
			// distribution keeps its shape.
			r.w.Net.SetLinkLatency(x, y, simnet.Scaled{Model: matrix.Link(x, y), Factor: f.Factor})
		})
	})
	r.w.Sched.After(f.At+f.For, func() {
		forEachPair(as, bs, func(x, y wire.NodeID) {
			r.w.Net.SetLinkLatency(x, y, nil)
		})
		r.endFault()
	})
}

// CongestionBurst repeatedly saturates the links between two regions:
// each burst raises loss to Loss and stretches latency by Factor for For,
// then clears; bursts recur every Every, Repeat times in total.
type CongestionBurst struct {
	A, B   string
	Loss   float64
	Factor float64
	At     time.Duration
	For    time.Duration
	Repeat int
	Every  time.Duration
}

// Describe implements Fault.
func (f CongestionBurst) Describe() string {
	return fmt.Sprintf("congestion %s↔%s loss=%.2f ×%.3g @%s ×%d every %s",
		f.A, f.B, f.Loss, f.Factor, f.At, f.repeats(), f.Every)
}

func (f CongestionBurst) repeats() int {
	if f.Repeat < 1 {
		return 1
	}
	return f.Repeat
}

// Window implements Fault. The window spans the first burst; later bursts
// are validated via Every×Repeat by Scenario.validate.
func (f CongestionBurst) Window() (time.Duration, time.Duration) {
	last := f.At + time.Duration(f.repeats()-1)*f.Every
	return f.At, last + f.For - f.At
}

func (f CongestionBurst) schedule(r *runtime) {
	as := r.sc.Topology.NodesIn(f.A)
	bs := r.sc.Topology.NodesIn(f.B)
	matrix := r.matrix
	factor := f.Factor
	if factor <= 0 {
		factor = 1
	}
	for i := 0; i < f.repeats(); i++ {
		start := f.At + time.Duration(i)*f.Every
		r.w.Sched.After(start, func() {
			r.beginFault(f.Describe())
			forEachPair(as, bs, func(x, y wire.NodeID) {
				r.w.Net.SetLinkLoss(x, y, f.Loss)
				r.w.Net.SetLinkLatency(x, y, simnet.Scaled{Model: matrix.Link(x, y), Factor: factor})
			})
		})
		r.w.Sched.After(start+f.For, func() {
			forEachPair(as, bs, func(x, y wire.NodeID) {
				r.w.Net.SetLinkLoss(x, y, -1)
				r.w.Net.SetLinkLatency(x, y, nil)
			})
			r.endFault()
		})
	}
}

// RegionOutage blacks out every manager in Region at the network level
// (correlated whole-region failure): their inbound and outbound traffic is
// dropped for the window, but their process state survives — deliberately a
// network blackout rather than a crash-recover, so the sequencing oracle's
// no-counter-replay assumption holds.
type RegionOutage struct {
	Region string
	At     time.Duration
	For    time.Duration
}

// Describe implements Fault.
func (f RegionOutage) Describe() string {
	return fmt.Sprintf("outage %s managers @%s for %s", f.Region, f.At, f.For)
}

// Window implements Fault.
func (f RegionOutage) Window() (time.Duration, time.Duration) { return f.At, f.For }

func (f RegionOutage) schedule(r *runtime) {
	mgrs := r.sc.Topology.ManagersIn(f.Region)
	r.w.Sched.After(f.At, func() {
		r.beginFault(f.Describe())
		for _, m := range mgrs {
			r.w.Net.Crash(m)
		}
	})
	r.w.Sched.After(f.At+f.For, func() {
		for _, m := range mgrs {
			r.w.Net.Recover(m)
		}
		r.endFault()
	})
}

// excluding returns all of set minus the members of drop.
func excluding(set, drop []wire.NodeID) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(set))
	for _, id := range set {
		skip := false
		for _, d := range drop {
			if id == d {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, id)
		}
	}
	return out
}

// forEachPair applies fn to both directions of every cross pair (a,b).
func forEachPair(as, bs []wire.NodeID, fn func(x, y wire.NodeID)) {
	for _, a := range as {
		for _, b := range bs {
			if a == b {
				continue
			}
			fn(a, b)
			fn(b, a)
		}
	}
}
