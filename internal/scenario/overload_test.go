package scenario

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"wanac/internal/core"
	"wanac/internal/simnet"
	"wanac/internal/telemetry"
	"wanac/internal/wire"
)

// overloadFlood builds the protected-vs-baseline experiment scenario: a
// sustained check flood far beyond the managers' service capacity, with
// admin revocations landing mid-flood. The protected variant runs the full
// stack (two-lane inbound queues, token-bucket admission with Busy/backoff,
// adaptive Te); the baseline serves the same flood through an unprioritized
// FIFO queue with no admission control.
func overloadFlood(name string, protected bool) *Scenario {
	cap := simnet.Capacity{
		ServiceTime: 10 * time.Millisecond, // 100 msg/s per manager
		QueueDepth:  64,
		LaneDepth:   256,
		FIFO:        !protected,
	}
	sc := New(name, "overload experiment").
		WithTopology(Atlantic3()).
		WithTe(30 * time.Second).
		WithLoad(Steady{RPS: 200}). // 100× the catalog's steady baseline of 2
		WithPopulation(Population{Users: 50_000, ZipfS: 1.05, Authorized: 32}).
		WithAdminChurn(15 * time.Second).
		WithManagerCapacity(cap).
		For(60 * time.Second)
	if protected {
		sc.WithOverload(core.OverloadConfig{
			RateLimit:  core.RateLimitConfig{AppRPS: 60, AppBurst: 30, HostRPS: 25, HostBurst: 10},
			AdaptiveTe: core.AdaptiveTeConfig{Max: 2 * time.Minute, Interval: 2 * time.Second},
		})
	}
	return sc
}

// TestOverloadProtectionBoundsRevocationLag is the tentpole proof: under a
// 100× check flood, the protected deployment keeps end-to-end revocation
// lag (submit → quorum → no host confirming) within the configured bound,
// while the identical unprotected deployment leaks — its update traffic
// drowns in the query flood, so revocations converge late or not at all.
func TestOverloadProtectionBoundsRevocationLag(t *testing.T) {
	reg := telemetry.NewRegistry()
	prot := overloadFlood("overload-protected", true).WithTelemetry(reg)
	resP, err := Run(prot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Failed() {
		for _, v := range resP.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal("protected overload run violated its oracles")
	}

	// The protection stack must actually have engaged, end to end.
	o := resP.Overload
	if o.QueriesShed == 0 {
		t.Error("no queries shed: admission control never engaged")
	}
	if o.BusyReplies == 0 || o.Backoffs == 0 {
		t.Errorf("hosts never backed off: busy=%d backoffs=%d", o.BusyReplies, o.Backoffs)
	}
	if o.Backoffs < o.BusyReplies {
		t.Errorf("backoffs (%d) < busy replies (%d): every Busy defers a round", o.Backoffs, o.BusyReplies)
	}
	if o.TeWidenings == 0 {
		t.Error("adaptive Te never widened under sustained shedding")
	}
	if o.EffectiveTePeak <= prot.te() || o.EffectiveTePeak > prot.Overload.AdaptiveTe.Max {
		t.Errorf("effective Te peak = %v, want in (%v, %v]", o.EffectiveTePeak, prot.te(), prot.Overload.AdaptiveTe.Max)
	}
	if o.CapacityDrops[wire.LaneHigh] != 0 {
		t.Errorf("high-lane capacity drops = %d: control traffic must never be squeezed out", o.CapacityDrops[wire.LaneHigh])
	}

	// Every revocation converged, and within the stated bound: with the
	// adaptive controller on, that bound is AdaptiveTe.Max (grants may
	// legally carry expiry up to the widened Te).
	if resP.Revocations == 0 {
		t.Fatal("no revocations reached quorum in the protected run")
	}
	if len(resP.SubmitLags) != resP.Revocations {
		t.Fatalf("converged %d of %d revocations", len(resP.SubmitLags), resP.Revocations)
	}
	bound := prot.oracleTe() + prot.policy().QueryTimeout
	if resP.SubmitLagP99 > bound {
		t.Errorf("protected submit-lag p99 = %v, want <= %v", resP.SubmitLagP99, bound)
	}

	// The exported telemetry must agree exactly with the result totals —
	// same counters a live deployment would alert on.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	for _, want := range []string{
		fmt.Sprintf(`wanac_manager_queries_total{result="shed"} %d`, o.QueriesShed),
		fmt.Sprintf(`wanac_manager_te_widenings_total %d`, o.TeWidenings),
		fmt.Sprintf(`wanac_host_busy_replies_total %d`, o.BusyReplies),
		fmt.Sprintf(`wanac_host_backoffs_total %d`, o.Backoffs),
	} {
		if !strings.Contains(exposition, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Baseline: same flood, same capacity, FIFO queue, no admission
	// control. The leak shows up as end-to-end revocation lag: updates and
	// acks queue behind (or are dropped with) the flood, so convergence
	// from submit blows past the protected run's.
	base := overloadFlood("overload-baseline", false)
	resB, err := Run(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Overload.QueriesShed != 0 || resB.Overload.BusyReplies != 0 {
		t.Errorf("baseline unexpectedly shed: %+v", resB.Overload)
	}
	if resB.Overload.CapacityDrops[wire.LaneBulk] == 0 {
		t.Error("baseline never overflowed its inbound queue: flood too weak to prove anything")
	}
	leaked := resB.Revocations < resP.Revocations || // quorums never completed
		len(resB.SubmitLags) < len(resB.RevocationLags) || // converged fewer than measured
		resB.SubmitLagP99 > 2*resP.SubmitLagP99 // or converged late
	if !leaked {
		t.Errorf("baseline did not leak: base p99=%v n=%d/%d vs protected p99=%v n=%d",
			resB.SubmitLagP99, len(resB.SubmitLags), resB.Revocations,
			resP.SubmitLagP99, len(resP.SubmitLags))
	}
	t.Logf("protected: p99=%v lags=%v shed=%d busy=%d backoffs=%d widenings=%d tePeak=%v drops=%v",
		resP.SubmitLagP99, resP.SubmitLags, o.QueriesShed, o.BusyReplies, o.Backoffs,
		o.TeWidenings, o.EffectiveTePeak, o.CapacityDrops)
	t.Logf("baseline:  p99=%v lags=%v revocations=%d drops=%v",
		resB.SubmitLagP99, resB.SubmitLags, resB.Revocations, resB.Overload.CapacityDrops)
}
