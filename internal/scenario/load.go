package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"wanac/internal/wire"
)

// Curve shapes the scenario's check-arrival rate over time. Arrivals are a
// non-homogeneous Poisson process: the runner draws exponential gaps at the
// instantaneous rate, so bursts and lulls follow the curve.
type Curve interface {
	// Rate returns the target arrival rate in checks per second at time t
	// since scenario start.
	Rate(t time.Duration) float64
	// Describe names the curve for scenario listings.
	Describe() string
}

// Steady issues checks at a constant rate.
type Steady struct{ RPS float64 }

// Rate implements Curve.
func (s Steady) Rate(time.Duration) float64 { return s.RPS }

// Describe implements Curve.
func (s Steady) Describe() string { return fmt.Sprintf("steady %.3grps", s.RPS) }

// Diurnal models the day/night cycle as a raised cosine between Base
// (trough, at t=0) and Peak, with the given Period per full cycle.
type Diurnal struct {
	Base, Peak float64
	Period     time.Duration
}

// Rate implements Curve.
func (d Diurnal) Rate(t time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := 2 * math.Pi * float64(t) / float64(d.Period)
	return d.Base + (d.Peak-d.Base)*(1-math.Cos(phase))/2
}

// Describe implements Curve.
func (d Diurnal) Describe() string {
	return fmt.Sprintf("diurnal %.3g-%.3grps/%s", d.Base, d.Peak, d.Period)
}

// FlashCrowd runs at Base, then at At ramps linearly to Peak over Rise,
// holds for Sustain, and decays back over Fall — the on-line magazine's
// traffic spike (§2.3).
type FlashCrowd struct {
	Base, Peak float64
	At         time.Duration // when the ramp starts
	Rise       time.Duration // ramp-up duration
	Sustain    time.Duration // time at Peak
	Fall       time.Duration // ramp-down duration
}

// Rate implements Curve.
func (f FlashCrowd) Rate(t time.Duration) float64 {
	switch {
	case t < f.At:
		return f.Base
	case t < f.At+f.Rise:
		frac := float64(t-f.At) / float64(f.Rise)
		return f.Base + (f.Peak-f.Base)*frac
	case t < f.At+f.Rise+f.Sustain:
		return f.Peak
	case t < f.At+f.Rise+f.Sustain+f.Fall:
		frac := float64(t-f.At-f.Rise-f.Sustain) / float64(f.Fall)
		return f.Peak - (f.Peak-f.Base)*frac
	default:
		return f.Base
	}
}

// Describe implements Curve.
func (f FlashCrowd) Describe() string {
	return fmt.Sprintf("flash %.3g→%.3grps@%s", f.Base, f.Peak, f.At)
}

// Population describes who the checks are for: Users is the total simulated
// population (may be millions — only identifiers are materialized, never
// per-user state), sampled by Zipf rank so a handful of users dominate
// traffic. The top Authorized ranks are ACL-seeded with the use right; the
// long tail exercises the deny path.
type Population struct {
	// Users is the population size. Zero means 10 000.
	Users int
	// ZipfS is the Zipf exponent (must exceed 1; zero means 1.2 — mildly
	// skewed). Values near 1 flatten the curve, larger values concentrate
	// traffic on the top ranks.
	ZipfS float64
	// Authorized is how many top ranks hold the use right. Zero means 64.
	Authorized int
}

func (p Population) withDefaults() Population {
	if p.Users == 0 {
		p.Users = 10000
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	if p.Authorized == 0 {
		p.Authorized = 64
	}
	if p.Authorized > p.Users {
		p.Authorized = p.Users
	}
	return p
}

// Describe names the population for scenario listings.
func (p Population) Describe() string {
	p = p.withDefaults()
	return fmt.Sprintf("%s users zipf(%.3g) %d authorized", humanCount(p.Users), p.ZipfS, p.Authorized)
}

func humanCount(n int) string {
	switch {
	case n >= 1_000_000 && n%100_000 == 0:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000 && n%100 == 0:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

// sampler draws user ranks for one run.
type sampler struct {
	zipf *rand.Zipf
}

func (p Population) sampler(rng *rand.Rand) *sampler {
	p = p.withDefaults()
	return &sampler{zipf: rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Users-1))}
}

// draw returns the next user by popularity rank (rank 0 most popular).
func (s *sampler) draw() wire.UserID {
	return userID(int(s.zipf.Uint64()))
}

// userID names the user at a popularity rank; the top Population.Authorized
// ranks are the seeded (granted) users.
func userID(rank int) wire.UserID { return wire.UserID(fmt.Sprintf("u%d", rank)) }

// AuthorizedUsers materializes the seeded user list.
func (p Population) AuthorizedUsers() []wire.UserID {
	p = p.withDefaults()
	users := make([]wire.UserID, p.Authorized)
	for i := range users {
		users[i] = userID(i)
	}
	return users
}
