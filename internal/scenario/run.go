package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"wanac/internal/audit"
	"wanac/internal/core"
	"wanac/internal/flight"
	"wanac/internal/harness"
	"wanac/internal/sim"
	"wanac/internal/simnet"
	"wanac/internal/telemetry"
	"wanac/internal/wire"
)

const (
	// flightRing sizes each node's flight recorder for scenario runs.
	flightRing = 4096
	// auditRing sizes each node's audit recorder; dimensioned like the
	// flight ring so the audit-completeness oracle rarely sees drops.
	auditRing = 8192
	// minRate floors the arrival rate so the sampler never divides by zero.
	minRate = 0.05
	// maxGap bounds one arrival draw so rate ramps (flash crowds) are
	// re-sampled at least once a second. Redrawing after maxGap without an
	// arrival is exact for exponential gaps (memorylessness), so the clamp
	// changes responsiveness, not the distribution.
	maxGap = time.Second
	// lagProbeEvery is the revocation-lag probe interval after a revoke
	// reaches quorum.
	lagProbeEvery = time.Second
)

// Result is the outcome of one scenario run.
type Result struct {
	Name string
	Seed int64
	// Checks counts issued probes, Decisions those that resolved; the
	// Allowed/Denied/DefaultAllowed split is over decisions.
	Checks         int
	Decisions      int
	Allowed        int
	Denied         int
	DefaultAllowed int
	// Revocations counts admin revocations that reached quorum;
	// RevocationLags holds one convergence measurement per revocation that
	// was observed to converge (time until no host confirms the revoked
	// user), and RevocationLagP99 the distribution's p99 (0 when empty).
	Revocations      int
	RevocationLags   []time.Duration
	RevocationLagP99 time.Duration
	// SubmitLags measures each revocation end to end: admin submit →
	// update quorum → no host still confirming. RevocationLags (above)
	// starts the clock at quorum and is structurally bounded by cache
	// expiry; the submit-to-quorum leg is where an overloaded, unprotected
	// manager set leaks, so this is the distribution the overload
	// experiments compare.
	SubmitLags   []time.Duration
	SubmitLagP99 time.Duration
	// Overload aggregates the overload-protection counters across all
	// nodes at the end of the run (zero when protection is off and the
	// managers have infinite capacity).
	Overload OverloadTotals
	// SLO holds the final state of every scenario SLO (slo.go): windowed
	// SLI, budget consumed, and the burn-rate alert's firing history.
	SLO []SLOReport
	// Audit aggregates decision provenance: exact per-reason decision
	// counts (read from the wanac_host_check_reasons_total counter family,
	// so immune to ring drops) plus the audit rings' record/drop totals.
	Audit AuditTotals
	// Oracles and Violations are the five harness oracles' verdicts.
	Oracles    []harness.OracleReport
	Violations []harness.Violation
	// Flight is the merged flight dump with violation marks (nil on clean
	// runs); FlightPath is set by WriteFlightArtifact.
	Flight     *flight.Dump
	FlightPath string
	// Net are the simulated network's delivery counters.
	Net simnet.Counters
}

// Failed reports whether any oracle fired.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// AuditTotals aggregates the audit subsystem's view of one run.
type AuditTotals struct {
	// Reasons counts completed decisions by audit reason (keyed by the
	// reason's stable name, e.g. "cache_hit"), summed across hosts.
	Reasons map[string]uint64
	// Records counts audit records accepted across every node ring
	// (decisions and manager responses); Dropped counts those the bounded
	// rings overwrote before the end-of-run dump.
	Records uint64
	Dropped uint64
}

// Summary renders the totals as the transcript's one-line `audit:` field:
// nonzero decision reasons in canonical order, then ring accounting.
func (a AuditTotals) Summary() string {
	var parts []string
	for _, reason := range audit.DecisionReasons {
		if n := a.Reasons[reason.String()]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "no decisions")
	}
	return fmt.Sprintf("%s (%d records, %d ring drops)",
		strings.Join(parts, " "), a.Records, a.Dropped)
}

// OverloadTotals sums the overload-protection telemetry across nodes.
type OverloadTotals struct {
	// QueriesShed counts manager queries rejected by admission control
	// with a Busy reply; TeWidenings counts adaptive-Te controller
	// intervals that widened the effective bound.
	QueriesShed uint64
	TeWidenings uint64
	// BusyReplies counts Busy replies hosts processed; Backoffs counts
	// host check rounds deferred by the backoff window.
	BusyReplies uint64
	Backoffs    uint64
	// EffectiveTePeak is the widest effective Te observed on any manager
	// during the run (sampled at the cache-sweep cadence; equals the base
	// Te when the controller never widened).
	EffectiveTePeak time.Duration
	// TeMaxedAt is the run offset of the first cache sweep that observed
	// a manager's effective Te at the AdaptiveTe.Max cap — the moment the
	// controller ran out of widening headroom (0 when it never did). The
	// SLO regression test holds burn-rate alerts to firing before this.
	TeMaxedAt time.Duration
	// CapacityDrops counts inbound messages dropped at the managers'
	// finite-capacity queues, by wire.Lane (bulk, high).
	CapacityDrops [2]uint64
}

// runtime drives one scenario against a sim.World, mirroring the harness
// runner's bookkeeping (latest admin state per user, judged checks,
// post-quiet availability probes) while adding load curves, Zipf traffic,
// fault windows, and revocation-lag measurement.
type runtime struct {
	sc     *Scenario
	w      *sim.World
	matrix *simnet.Matrix
	rng    *rand.Rand
	smp    *sampler

	oracles *harness.OracleSet
	users   []wire.UserID // authorized (seeded) users

	// probeHist is the black-box revocation prober: one observation per
	// measureLag sweep, so the SLO engine sees lag as an event stream.
	probeHist *telemetry.Histogram

	revokedAt map[wire.UserID]time.Time
	grantedAt map[wire.UserID]time.Time
	inflight  map[wire.UserID]bool

	lastDisrupt  time.Time
	activeFaults int

	start time.Time
	res   *Result
	churn int
}

// Run executes the scenario with the given seed (0 uses the scenario's
// default). The run is a pure function of (scenario, seed).
func Run(sc *Scenario, seed int64) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = sc.Seed
	}
	pop := sc.Population.withDefaults()
	mgrTe := sc.te()
	if sc.Break.InflateTe {
		mgrTe = 10 * sc.te()
	}
	matrix := sc.Topology.Matrix()
	// Every run is instrumented: against the caller's registry when set
	// (the overload experiments assert exact counters), else a private
	// one. The SLO engine and the prober histogram read the same families
	// the nodes write.
	reg := sc.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	w, err := sim.Build(sim.Config{
		App:      "app",
		Managers: sc.Topology.Managers(),
		Hosts:    sc.Topology.Hosts(),
		Policy:   sc.policy(),
		Te:       mgrTe,
		Users:    pop.AuthorizedUsers(),
		Net: simnet.Config{
			LinkLatency: matrix,
			Loss:        sc.Loss,
			Seed:        seed,
		},
		Overload:        sc.Overload,
		ManagerCapacity: sc.Capacity,
		Telemetry:       reg,
		FlightRing:      flightRing,
		AuditRing:       auditRing,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: build world: %w", sc.Name, err)
	}
	if sc.Break.DropRevokeNotices {
		w.Net.Filter = func(_, _ wire.NodeID, msg wire.Message) bool {
			_, isNotice := msg.(wire.RevokeNotice)
			return !isNotice
		}
	}
	if sc.CacheLimit > 0 {
		for _, h := range w.Hosts {
			h.SetCacheLimit(sc.CacheLimit)
		}
	}

	p := sc.policy()
	r := &runtime{
		sc:     sc,
		w:      w,
		matrix: matrix,
		// The load/population stream draws from its own rng so the network's
		// loss/latency draws don't shift which user a check targets.
		rng:       rand.New(rand.NewSource(seed + 1)),
		oracles:   harness.NewOracleSet(sc.oracleTe(), p.QueryTimeout, sc.CacheLimit, p.CheckQuorum, p.MaxAttempts),
		users:     pop.AuthorizedUsers(),
		revokedAt: make(map[wire.UserID]time.Time),
		grantedAt: make(map[wire.UserID]time.Time),
		inflight:  make(map[wire.UserID]bool),
		start:     w.Sched.Now(),
		res:       &Result{Name: sc.Name, Seed: seed},
	}
	r.smp = pop.sampler(r.rng)
	for _, u := range r.users {
		r.grantedAt[u] = r.start
	}
	r.probeHist = reg.Histogram("wanac_probe_revocation_lag_seconds",
		"Black-box prober: revocation lag observed at each probe sweep (right-censored while hosts still confirm).",
		telemetry.DefBuckets)
	engine := r.setupSLO(reg)

	for _, f := range sc.Faults {
		f.schedule(r)
	}
	if sc.AdminEvery > 0 {
		for at := sc.AdminEvery; at < sc.Duration; at += sc.AdminEvery {
			w.Sched.After(at, func() { r.churnOnce() })
		}
	}
	for at := 15 * time.Second; at <= sc.Duration+harness.Settle; at += 15 * time.Second {
		t := at
		w.Sched.After(t, func() { r.sweepCaches() })
	}
	r.nextArrival()

	w.RunFor(sc.Duration + harness.Settle)

	r.oracles.AnalyzeTrace(w.Tracer.Events(), w.UpdateQuorumTimes())
	r.oracles.AnalyzeAudit(w.Tracer.Events(), w.AuditDumps())
	res := r.res
	res.Oracles = r.oracles.Reports()
	res.Violations = r.oracles.Violations()
	res.RevocationLagP99 = p99(res.RevocationLags)
	res.SubmitLagP99 = p99(res.SubmitLags)
	r.gatherOverload()
	r.gatherAudit(reg)
	r.gatherSLO(engine)
	res.Net = w.Net.Stats()
	if res.Failed() {
		res.Flight = harness.MarkedFlightDump(w, res.Violations)
	}
	return res, nil
}

// WriteFlightArtifact persists a failed run's flight dump under the CI
// artifact directory ($WANAC_ARTIFACTS, else the system temp directory),
// named by scenario so reruns overwrite. Clean runs are a no-op.
func WriteFlightArtifact(res *Result) (string, error) {
	if res == nil || res.Flight == nil {
		return "", nil
	}
	path, err := harness.WriteDumpArtifact("wanac-flight-scenario-"+res.Name+".jsonl", res.Flight)
	if err != nil {
		return "", err
	}
	res.FlightPath = path
	return path, nil
}

func (r *runtime) now() time.Time { return r.w.Sched.Now() }

// nextArrival schedules the next load arrival at the curve's instantaneous
// rate. Gaps longer than maxGap are split: wait maxGap, then redraw at the
// then-current rate (exact for exponential gaps, and it tracks ramps).
func (r *runtime) nextArrival() {
	elapsed := r.now().Sub(r.start)
	if elapsed >= r.sc.Duration {
		return
	}
	rate := r.sc.Load.Rate(elapsed)
	if rate < minRate {
		rate = minRate
	}
	gap := time.Duration(r.rng.ExpFloat64() / rate * float64(time.Second))
	if gap > maxGap {
		r.w.Sched.After(maxGap, func() { r.nextArrival() })
		return
	}
	r.w.Sched.After(gap, func() {
		if r.now().Sub(r.start) < r.sc.Duration {
			r.check(r.rng.Intn(len(r.w.Hosts)), r.smp.draw())
		}
		r.nextArrival()
	})
}

// check issues one oracle-judged probe (same jurisdiction rules as the
// harness runner).
func (r *runtime) check(host int, user wire.UserID) {
	r.res.Checks++
	startAt := r.now()
	at := r.revokedAt[user] // zero if not revoked
	r.w.Hosts[host].Check(r.w.Cfg.App, user, wire.RightUse, func(d core.Decision) {
		r.res.Decisions++
		switch {
		case d.Allowed && d.DefaultAllowed:
			r.res.DefaultAllowed++
		case d.Allowed:
			r.res.Allowed++
		default:
			r.res.Denied++
		}
		cur, still := r.revokedAt[user]
		r.oracles.JudgeCheck(user, host, startAt, at, still && cur.Equal(at), d.Allowed, d.DefaultAllowed)
	})
}

// churnOnce revokes the next authorized user in rotation, measures how long
// hosts keep confirming them, then re-grants.
func (r *runtime) churnOnce() {
	user := r.users[r.churn%len(r.users)]
	r.churn++
	if r.inflight[user] {
		return
	}
	r.inflight[user] = true
	submitAt := r.now()
	// Submit to manager 0; the catalog keeps manager 0 outside partitioned
	// regions so churn reaches quorum even mid-fault.
	r.w.Managers[0].Submit(wire.AdminOp{
		Op: wire.OpRevoke, App: r.w.Cfg.App, User: user, Right: wire.RightUse,
		Issuer: r.w.Cfg.Admin,
	}, func(reply wire.AdminReply) {
		r.inflight[user] = false
		if !reply.QuorumReached {
			return
		}
		tq := r.now()
		r.revokedAt[user] = tq
		delete(r.grantedAt, user)
		r.res.Revocations++
		r.measureLag(user, submitAt, tq)
	})
}

// measureLag probes every host until none still confirms the revoked user,
// recording the convergence lag (from quorum) and the end-to-end lag (from
// submit), then schedules the re-grant. The probes are judged checks, so a
// host still confirming past the bound is both a lag data point and a
// revocation-safety violation.
func (r *runtime) measureLag(user wire.UserID, submitAt, tq time.Time) {
	cap := 2*r.sc.oracleTe() + 30*time.Second
	var sweep func()
	sweep = func() {
		if cur, ok := r.revokedAt[user]; !ok || !cur.Equal(tq) {
			return // superseded by a re-grant or newer revocation
		}
		confirming := 0
		pending := len(r.w.Hosts)
		for hi := range r.w.Hosts {
			host := hi
			startAt := r.now()
			r.w.Hosts[host].Check(r.w.Cfg.App, user, wire.RightUse, func(d core.Decision) {
				r.res.Decisions++
				switch {
				case d.Allowed && d.DefaultAllowed:
					r.res.DefaultAllowed++
				case d.Allowed:
					r.res.Allowed++
				default:
					r.res.Denied++
				}
				cur, still := r.revokedAt[user]
				r.oracles.JudgeCheck(user, host, startAt, tq, still && cur.Equal(tq), d.Allowed, d.DefaultAllowed)
				if d.Allowed && !d.DefaultAllowed {
					confirming++
				}
				pending--
				if pending > 0 {
					return
				}
				// Sweep complete: converged when no host confirms.
				lag := r.now().Sub(tq)
				r.probeHist.Observe(lag.Seconds())
				if confirming == 0 {
					r.res.RevocationLags = append(r.res.RevocationLags, lag)
					r.res.SubmitLags = append(r.res.SubmitLags, r.now().Sub(submitAt))
					r.w.Sched.After(5*time.Second, func() { r.regrant(user) })
					return
				}
				if lag < cap {
					r.w.Sched.After(lagProbeEvery, sweep)
					return
				}
				// Never converged within the cap (the broken scenarios):
				// record the cap so the table shows the pathology, and move on.
				r.res.RevocationLags = append(r.res.RevocationLags, lag)
				r.res.SubmitLags = append(r.res.SubmitLags, r.now().Sub(submitAt))
				r.w.Sched.After(5*time.Second, func() { r.regrant(user) })
			})
		}
		r.res.Checks += len(r.w.Hosts)
	}
	sweep()
}

// regrant restores the revoked user's right, keeping the model in sync.
func (r *runtime) regrant(user wire.UserID) {
	if r.inflight[user] {
		r.w.Sched.After(2*time.Second, func() { r.regrant(user) })
		return
	}
	r.inflight[user] = true
	// Clear optimistically at submission, mirroring the harness: once the
	// re-grant is in the system an allow can't be blamed on the revocation.
	delete(r.revokedAt, user)
	r.w.Managers[0].Submit(wire.AdminOp{
		Op: wire.OpAdd, App: r.w.Cfg.App, User: user, Right: wire.RightUse,
		Issuer: r.w.Cfg.Admin,
	}, func(reply wire.AdminReply) {
		r.inflight[user] = false
		if reply.QuorumReached {
			r.grantedAt[user] = r.now()
		}
	})
}

// sweepCaches feeds one observation per host to the cache-hygiene oracle
// and samples the managers' effective Te (the adaptive controller decays
// when load subsides, so the peak must be observed mid-run).
func (r *runtime) sweepCaches() {
	for i := range r.w.Hosts {
		_, retained, expired := r.w.CacheObservation(i)
		r.oracles.SweepCache(r.now(), i, len(retained), len(expired))
	}
	for _, m := range r.w.Managers {
		te := m.Stats().EffectiveTe
		if te > r.res.Overload.EffectiveTePeak {
			r.res.Overload.EffectiveTePeak = te
		}
		if max := r.sc.Overload.AdaptiveTe.Max; max > 0 && te >= max && r.res.Overload.TeMaxedAt == 0 {
			r.res.Overload.TeMaxedAt = r.now().Sub(r.start)
		}
	}
}

// gatherOverload sums the overload-protection counters across nodes into
// the result (called once, after the run).
func (r *runtime) gatherOverload() {
	o := &r.res.Overload
	for _, m := range r.w.Managers {
		st := m.Stats()
		o.QueriesShed += st.QueriesShed
		o.TeWidenings += st.TeWidenings
		if st.EffectiveTe > o.EffectiveTePeak {
			o.EffectiveTePeak = st.EffectiveTe
		}
	}
	for _, h := range r.w.Hosts {
		st := h.Stats()
		o.BusyReplies += st.BusyReplies
		o.Backoffs += st.Backoffs
	}
	for i := 0; i < r.sc.Topology.Managers(); i++ {
		if st, ok := r.w.Net.CapacityStats(sim.ManagerID(i)); ok {
			o.CapacityDrops[0] += st.Dropped[0]
			o.CapacityDrops[1] += st.Dropped[1]
		}
	}
}

// gatherAudit folds the run's decision provenance into the result: exact
// per-reason counts from the telemetry counters plus record/drop totals
// from the per-node audit rings (called once, after the run).
func (r *runtime) gatherAudit(reg *telemetry.Registry) {
	a := &r.res.Audit
	a.Reasons = make(map[string]uint64)
	for reason, n := range core.ReasonCounts(reg) {
		if n > 0 {
			a.Reasons[reason.String()] = n
		}
	}
	for _, d := range r.w.AuditDumps() {
		a.Records += d.Header.Total
		a.Dropped += d.Header.Dropped
	}
}

// beginFault opens one fault window: it stamps the disruption (voiding any
// armed availability probes) and annotates the net timeline.
func (r *runtime) beginFault(desc string) {
	r.lastDisrupt = r.now()
	r.activeFaults++
	r.w.Net.Annotate(desc)
}

// endFault closes one window; when the network goes quiet (no overlapping
// fault remains), post-heal availability probes are armed.
func (r *runtime) endFault() {
	r.activeFaults--
	if r.activeFaults == 0 {
		r.armAvailability(r.now())
	}
}

// armAvailability creates one post-quiet liveness probe per host, targeting
// a user whose grant has been stable since before the disruption ended.
func (r *runtime) armAvailability(healAt time.Time) {
	for hi := range r.w.Hosts {
		user, ok := r.stableUser(healAt)
		if !ok {
			continue
		}
		pr := r.oracles.ArmProbe(hi, user, healAt)
		r.w.Sched.After(3*core.DefaultUpdateRetry, func() { r.probeOnce(pr) })
		r.w.Sched.After(harness.AvailabilityWindow, func() {
			if !r.interferes(pr) {
				r.oracles.JudgeProbe(pr, r.now(), harness.AvailabilityWindow)
			}
		})
	}
}

// stableUser picks the first user granted at least 10s before the heal and
// not currently revoked or mid-churn.
func (r *runtime) stableUser(healAt time.Time) (wire.UserID, bool) {
	for _, u := range r.users {
		g, ok := r.grantedAt[u]
		if !ok || healAt.Sub(g) < 10*time.Second {
			continue
		}
		if _, revoked := r.revokedAt[u]; revoked {
			continue
		}
		if r.inflight[u] {
			continue
		}
		return u, true
	}
	return "", false
}

// interferes reports whether events since the heal invalidated the probe.
func (r *runtime) interferes(pr *harness.Probe) bool {
	if r.lastDisrupt.After(pr.HealAt) {
		return true
	}
	if _, revoked := r.revokedAt[pr.User]; revoked {
		return true
	}
	return r.inflight[pr.User]
}

// probeOnce runs one availability probe round and reschedules until the
// window closes.
func (r *runtime) probeOnce(pr *harness.Probe) {
	if pr.Done || pr.Aborted {
		return
	}
	if r.interferes(pr) {
		pr.Aborted = true
		return
	}
	if r.now().Sub(pr.HealAt) > harness.AvailabilityWindow {
		return
	}
	r.w.Hosts[pr.Host].Check(r.w.Cfg.App, pr.User, wire.RightUse, func(d core.Decision) {
		if d.Allowed {
			pr.Done = true
		}
	})
	r.w.Sched.After(2*time.Second, func() { r.probeOnce(pr) })
}

// p99 returns the 99th percentile of the samples (0 when empty).
func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)*99/100]
}
