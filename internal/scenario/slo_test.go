package scenario

import (
	"testing"
	"time"
)

func findSLO(t *testing.T, res *Result, name string) SLOReport {
	t.Helper()
	for _, s := range res.SLO {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("result has no SLO %q (have %v)", name, sloNames(res))
	return SLOReport{}
}

func sloNames(res *Result) []string {
	names := make([]string, len(res.SLO))
	for i, s := range res.SLO {
		names[i] = s.Name
	}
	return names
}

// TestOverload100xRevocationLagBurnAlert is the SLO regression the
// tentpole promises: during the 100× flood the black-box prober sees
// revocation lag blow past Te/10, the multi-window burn-rate alert
// fires while the flood is still running — before the adaptive-Te
// controller exhausts its widening headroom — and clears once the flood
// subsides, ending the run green.
func TestOverload100xRevocationLagBurnAlert(t *testing.T) {
	sc, err := Lookup("overload-100x")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	for _, name := range []string{
		"check-latency", "check-availability", "revocation-lag",
		"lane-drops-bulk", "lane-drops-high",
	} {
		findSLO(t, res, name)
	}

	// The flash crowd ramps at +40s and falls away by +95s.
	floodStart, floodEnd := 40*time.Second, 95*time.Second

	lag := findSLO(t, res, "revocation-lag")
	if lag.Fired < 1 {
		t.Fatalf("revocation-lag alert never fired: %+v", lag)
	}
	if lag.Firing {
		t.Fatalf("revocation-lag alert still firing at run end: %+v", lag)
	}
	rise := lag.Alerts[0]
	if !rise.Firing {
		t.Fatalf("first revocation-lag transition is not a rise: %+v", lag.Alerts)
	}
	if rise.At < floodStart || rise.At > floodEnd+sloFastWindow {
		t.Fatalf("revocation-lag alert fired at +%s, want within the flood [%s, %s]",
			rise.At, floodStart, floodEnd+sloFastWindow)
	}
	clear := lag.Alerts[len(lag.Alerts)-1]
	if clear.Firing {
		t.Fatalf("last revocation-lag transition is not a clear: %+v", lag.Alerts)
	}
	if clear.At < floodEnd {
		t.Fatalf("revocation-lag alert cleared at +%s, before the flood ended (+%s)", clear.At, floodEnd)
	}

	// Alerting must beat the adaptive-Te controller to the punch: by the
	// time a manager's effective Te hits the AdaptiveTe.Max cap (no
	// headroom left to protect revocations), some burn-rate alert is
	// already firing.
	if res.Overload.TeMaxedAt == 0 {
		t.Fatalf("adaptive Te never reached its cap; overload-100x should exhaust headroom (peak %s)",
			res.Overload.EffectiveTePeak)
	}
	earliest := time.Duration(-1)
	for _, s := range res.SLO {
		for _, a := range s.Alerts {
			if a.Firing && (earliest < 0 || a.At < earliest) {
				earliest = a.At
			}
		}
	}
	if earliest < 0 || earliest > res.Overload.TeMaxedAt {
		t.Fatalf("first burn-rate alert at +%s, after adaptive Te maxed at +%s", earliest, res.Overload.TeMaxedAt)
	}
}

// TestSteadyBaselineBurnsNoBudget pins the quiet end of the SLO suite:
// a clean run must not consume budget or fire alerts, so any future
// regression that degrades the steady state shows up here.
func TestSteadyBaselineBurnsNoBudget(t *testing.T) {
	sc, err := Lookup("steady-baseline")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("oracle violations: %v", res.Violations)
	}
	if len(res.SLO) == 0 {
		t.Fatal("no SLO reports on an instrumented run")
	}
	for _, s := range res.SLO {
		if s.Fired != 0 || s.Firing {
			t.Errorf("SLO %s fired on a clean run: %+v", s.Name, s)
		}
		if s.BudgetConsumed > 0.1 {
			t.Errorf("SLO %s consumed %.0f%% budget on a clean run", s.Name, s.BudgetConsumed*100)
		}
		if s.SLI < 0.99 {
			t.Errorf("SLO %s SLI %.3f on a clean run", s.Name, s.SLI)
		}
	}
}
