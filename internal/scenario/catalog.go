package scenario

import (
	"fmt"
	"time"

	"wanac/internal/core"
	"wanac/internal/simnet"
)

// Catalog returns the named scenario gallery, in listing order. Every entry
// is deterministic from its seed and attaches all four harness oracles;
// only stale-allow-demo is expected to fail (it ships deliberate protocol
// bugs to reproduce partition → stale-allow on demand).
func Catalog() []*Scenario {
	return []*Scenario{
		New("steady-baseline",
			"clean run: steady traffic across the Atlantic, admin churn, no faults").
			WithTopology(Atlantic3()).
			WithLoad(Steady{RPS: 5}).
			WithPopulation(Population{Users: 10000, ZipfS: 1.2, Authorized: 64}).
			WithAdminChurn(30 * time.Second).
			For(2 * time.Minute),

		New("diurnal-wave",
			"day/night load swing over five regions with periodic revocations").
			WithTopology(Global5()).
			WithLoad(Diurnal{Base: 2, Peak: 12, Period: 2 * time.Minute}).
			WithPopulation(Population{Users: 50000, ZipfS: 1.15, Authorized: 96}).
			WithAdminChurn(45 * time.Second).
			For(4 * time.Minute),

		New("flash-crowd",
			"13× traffic spike under the availability-first policy (Figure 4)").
			WithTopology(Global5()).
			WithPolicy(core.AvailabilityFirst(3, 45*time.Second)).
			WithTe(45 * time.Second).
			WithLoad(FlashCrowd{Base: 3, Peak: 40, At: 60 * time.Second,
				Rise: 10 * time.Second, Sustain: 30 * time.Second, Fall: 20 * time.Second}).
			WithPopulation(Population{Users: 200000, ZipfS: 1.1, Authorized: 128}).
			For(3 * time.Minute),

		New("region-outage",
			"correlated whole-region manager blackout; quorum survives on the rest").
			WithTopology(Global5()).
			WithLoad(Steady{RPS: 6}).
			WithPopulation(Population{Users: 20000, ZipfS: 1.2, Authorized: 64}).
			WithAdminChurn(40 * time.Second).
			WithFaults(RegionOutage{Region: EUWest, At: 50 * time.Second, For: 40 * time.Second}).
			For(3 * time.Minute),

		New("oneway-blackout",
			"asymmetric partition: manager replies vanish while queries still arrive").
			WithTopology(Atlantic3()).
			WithLoad(Steady{RPS: 6}).
			WithPopulation(Population{Users: 10000, ZipfS: 1.2, Authorized: 64}).
			WithFaults(OneWayPartition{
				From: Nodes{Region: EUWest, Role: Managers},
				To:   Nodes{Region: USEast, Role: Hosts},
				At:   40 * time.Second, For: 40 * time.Second,
			}).
			For(2 * time.Minute),

		New("slow-brownout",
			"slow-but-not-dead transatlantic links: 15× latency, no packet loss").
			WithTopology(Global5()).
			WithLoad(Steady{RPS: 5}).
			WithPopulation(Population{Users: 20000, ZipfS: 1.2, Authorized: 64}).
			WithFaults(SlowLinks{A: USEast, B: EUWest, Factor: 15,
				At: 45 * time.Second, For: 45 * time.Second}).
			For(3 * time.Minute),

		New("congestion-storm",
			"recurring congestion bursts on one intercontinental path, nine regions").
			WithTopology(Global9()).
			WithLoad(Steady{RPS: 4}).
			WithPopulation(Population{Users: 100000, ZipfS: 1.1, Authorized: 96}).
			WithFaults(CongestionBurst{A: EUCentral, B: APNortheast,
				Loss: 0.3, Factor: 8, At: 45 * time.Second, For: 15 * time.Second,
				Repeat: 4, Every: 45 * time.Second}).
			For(4 * time.Minute),

		New("revoke-under-partition",
			"revocations racing a full region partition; bound must still hold").
			WithTopology(Atlantic3()).
			WithTe(45 * time.Second).
			WithLoad(Steady{RPS: 8}).
			WithPopulation(Population{Users: 10000, ZipfS: 1.2, Authorized: 64}).
			WithAdminChurn(20 * time.Second).
			WithFaults(RegionPartition{Region: EUWest, At: 40 * time.Second, For: 50 * time.Second}).
			For(3 * time.Minute),

		New("zipf-flood",
			"2M-user population, heavy-tail popularity, tight host caches").
			WithTopology(Global5()).
			WithLoad(Steady{RPS: 40}).
			WithPopulation(Population{Users: 2_000_000, ZipfS: 1.07, Authorized: 256}).
			WithCacheLimit(128).
			WithAdminChurn(30 * time.Second).
			For(3 * time.Minute),

		New("overload-100x",
			"100× check flood against finite-capacity managers; lanes + admission control + adaptive Te keep revocations converging").
			WithTopology(Atlantic3()).
			WithTe(30 * time.Second).
			WithLoad(FlashCrowd{Base: 2, Peak: 200, At: 40 * time.Second,
				Rise: 5 * time.Second, Sustain: 40 * time.Second, Fall: 10 * time.Second}).
			WithPopulation(Population{Users: 100_000, ZipfS: 1.05, Authorized: 48}).
			WithAdminChurn(20 * time.Second).
			WithManagerCapacity(simnet.Capacity{
				ServiceTime: 8 * time.Millisecond, QueueDepth: 64, LaneDepth: 256}).
			WithOverload(core.OverloadConfig{
				RateLimit:  core.RateLimitConfig{AppRPS: 60, AppBurst: 30, HostRPS: 25, HostBurst: 10},
				AdaptiveTe: core.AdaptiveTeConfig{Max: 2 * time.Minute, Interval: 2 * time.Second},
			}).
			For(2 * time.Minute),

		New("stale-allow-demo",
			"BROKEN on purpose: inflated Te + dropped revoke notices under partition → stale allows").
			WithTopology(Atlantic3()).
			WithTe(30 * time.Second).
			WithLoad(Steady{RPS: 6}).
			WithPopulation(Population{Users: 10000, ZipfS: 1.3, Authorized: 32}).
			WithAdminChurn(25 * time.Second).
			WithFaults(RegionPartition{Region: EUWest, At: 40 * time.Second, For: 60 * time.Second}).
			WithBreak(Break{InflateTe: true, DropRevokeNotices: true}).
			For(150 * time.Second),
	}
}

// Lookup finds a catalog scenario by name.
func Lookup(name string) (*Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (see `acsim list`)", name)
}
