package scenario

import (
	"fmt"
	"strings"
	"time"

	"wanac/internal/core"
)

// FormatResult renders one run's outcome as the `acsim run` transcript
// block. The output is deterministic for a given (scenario, seed).
func FormatResult(sc *Scenario, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s seed=%d\n", res.Name, res.Seed)
	fmt.Fprintf(&b, "  checks:     %d issued, %d decided (%d allowed, %d denied, %d default-allowed)\n",
		res.Checks, res.Decisions, res.Allowed, res.Denied, res.DefaultAllowed)
	if sc.AdminEvery > 0 {
		fmt.Fprintf(&b, "  revocations: %d at quorum, lag p99 %s over %d measured\n",
			res.Revocations, fmtLag(res.RevocationLagP99), len(res.RevocationLags))
	}
	protected := sc.Capacity.ServiceTime > 0 || sc.Overload != (core.OverloadConfig{})
	if o := res.Overload; protected {
		fmt.Fprintf(&b, "  overload:   shed=%d busy=%d backoffs=%d te-widenings=%d effective-te-peak=%s queue-drops=%d bulk/%d high\n",
			o.QueriesShed, o.BusyReplies, o.Backoffs, o.TeWidenings,
			o.EffectiveTePeak, o.CapacityDrops[0], o.CapacityDrops[1])
		fmt.Fprintf(&b, "  submit-lag: p99 %s over %d measured (revocation submit → converged)\n",
			fmtLag(res.SubmitLagP99), len(res.SubmitLags))
	}
	fmt.Fprintf(&b, "  audit:      %s\n", res.Audit.Summary())
	fmt.Fprintf(&b, "  network:    %s\n", res.Net)
	if len(res.SLO) > 0 {
		fmt.Fprintf(&b, "  slo:\n")
		for _, s := range res.SLO {
			fmt.Fprintf(&b, "    %-22s objective %s, sli %s, budget %s, alerts %d%s\n",
				s.Name, fmtPct(s.Objective), fmtPct(s.SLI), fmtBudget(s.BudgetConsumed),
				s.Fired, fmtAlerts(s.Alerts))
		}
	}
	fmt.Fprintf(&b, "  oracles:\n")
	for _, o := range res.Oracles {
		verdict := "pass"
		if o.Violations > 0 {
			verdict = fmt.Sprintf("FAIL (%d violations)", o.Violations)
		}
		fmt.Fprintf(&b, "    %-22s %-22s %d observations\n", o.Name, verdict, o.Observations)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	if res.FlightPath != "" {
		fmt.Fprintf(&b, "  flight dump: %s (render with: go run ./cmd/acflight %s)\n",
			res.FlightPath, res.FlightPath)
	}
	return b.String()
}

// Verdict compresses the oracle outcome to one word per oracle for the
// gallery table: "4/4 pass" or "revocation-safety:12".
func Verdict(res *Result) string {
	var failed []string
	for _, o := range res.Oracles {
		if o.Violations > 0 {
			failed = append(failed, fmt.Sprintf("%s:%d", o.Name, o.Violations))
		}
	}
	if len(failed) == 0 {
		return fmt.Sprintf("%d/%d pass", len(res.Oracles), len(res.Oracles))
	}
	return strings.Join(failed, ", ")
}

func fmtPct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// fmtBudget renders budget consumption as a percentage, capped so a
// catastrophic run stays readable.
func fmtBudget(v float64) string {
	if v > 99.99 {
		return ">9999%"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}

// fmtAlerts renders the alert edges as " (fired +40s, cleared +1m55s)".
func fmtAlerts(alerts []SLOAlert) string {
	if len(alerts) == 0 {
		return ""
	}
	parts := make([]string, len(alerts))
	for i, a := range alerts {
		verb := "cleared"
		if a.Firing {
			verb = "fired"
		}
		parts[i] = fmt.Sprintf("%s +%s", verb, a.At.Round(time.Second))
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

func fmtLag(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Millisecond).String()
}

// Table renders the scenario gallery as a markdown table, one row per
// (scenario, result) pair — the generator behind EXPERIMENTS.md's
// "Scenario gallery" section (`acsim table`).
func Table(scs []*Scenario, results []*Result) string {
	var b strings.Builder
	b.WriteString("| scenario | regions | M/C | load | faults | oracles | revocation lag p99 |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for i, sc := range scs {
		res := results[i]
		p := sc.policy()
		fmt.Fprintf(&b, "| %s | %d (%s) | %d/%d | %s | %s | %s | %s |\n",
			sc.Name,
			len(sc.Topology.Regions), sc.Topology.Name,
			sc.Topology.Managers(), p.CheckQuorum,
			sc.Load.Describe(),
			sc.FaultSummary(),
			Verdict(res),
			fmtLag(res.RevocationLagP99),
		)
	}
	return b.String()
}
