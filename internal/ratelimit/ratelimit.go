// Package ratelimit provides the token buckets behind manager admission
// control. A bucket holds up to Burst tokens and refills at Rate tokens per
// second; each admitted request spends one token. The package is built for
// the simulator's virtual clock: every method takes the current time
// explicitly instead of reading the wall clock, so the same code runs under
// simnet's deterministic scheduler and in live deployments (callers pass
// time.Now()).
//
// Keyed wraps a bucket per key (per source host, per application) with
// idle-entry eviction, which is what the manager actually mounts: one global
// per-app bucket bounding aggregate load, and per-host buckets preventing a
// single aggressive host from consuming the whole app budget.
package ratelimit

import (
	"sync"
	"time"
)

// Bucket is a token bucket. The zero value is unusable; construct with
// NewBucket. Methods are not safe for concurrent use — Keyed adds the lock,
// and single-bucket users hold their own (the manager's buckets are only
// touched under the node lock).
type Bucket struct {
	rate  float64 // tokens per second
	burst float64 // capacity
	// tokens is the balance as of last. Refill is computed lazily on each
	// call from the elapsed time, so an idle bucket costs nothing.
	tokens float64
	last   time.Time
}

// NewBucket returns a bucket refilling at rate tokens/second with capacity
// burst, starting full. A non-positive rate never refills (the initial burst
// is all there is); a non-positive burst admits nothing, ever — useful as an
// explicit "shed everything" configuration.
func NewBucket(rate, burst float64) *Bucket {
	if burst < 0 {
		burst = 0
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// refill advances the balance to now. Time moving backwards (clock skew in
// live deployments) is treated as no elapsed time rather than a debit.
func (b *Bucket) refill(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	if elapsed := now.Sub(b.last); elapsed > 0 && b.rate > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	if now.After(b.last) {
		b.last = now
	}
}

// Allow reports whether one request may proceed at time now, spending a
// token if so.
func (b *Bucket) Allow(now time.Time) bool {
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter returns how long after now the bucket will next hold a full
// token — the value a manager puts in a Busy reply so hosts back off for a
// useful amount of time instead of guessing. Zero means a token is available
// now; a bucket that can never refill to one token reports a sentinel of one
// hour rather than infinity.
func (b *Bucket) RetryAfter(now time.Time) time.Duration {
	b.refill(now)
	if b.tokens >= 1 {
		return 0
	}
	const never = time.Hour
	if b.rate <= 0 || b.burst < 1 {
		return never
	}
	need := 1 - b.tokens
	d := time.Duration(need / b.rate * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond // a token is strictly in the future
	}
	if d > never {
		d = never
	}
	return d
}

// Tokens returns the balance as of now, for telemetry.
func (b *Bucket) Tokens(now time.Time) float64 {
	b.refill(now)
	return b.tokens
}

// Keyed maintains one bucket per key, creating buckets on first use and
// evicting entries idle longer than the configured window so a long-running
// manager's memory stays proportional to its active host set, not its
// lifetime one. Keyed is safe for concurrent use.
type Keyed struct {
	rate, burst float64
	idle        time.Duration

	mu      sync.Mutex
	buckets map[string]*keyedEntry
	sweepAt time.Time
}

type keyedEntry struct {
	b    *Bucket
	used time.Time
}

// DefaultIdleEviction is how long a key's bucket survives without traffic
// before it is swept. An evicted key starts over with a full burst, which is
// exactly what a freshly booted host would get anyway.
const DefaultIdleEviction = 5 * time.Minute

// NewKeyed returns a keyed limiter; every key gets its own bucket with the
// given rate and burst. idle <= 0 uses DefaultIdleEviction.
func NewKeyed(rate, burst float64, idle time.Duration) *Keyed {
	if idle <= 0 {
		idle = DefaultIdleEviction
	}
	return &Keyed{rate: rate, burst: burst, idle: idle,
		buckets: make(map[string]*keyedEntry)}
}

// Allow reports whether one request for key may proceed at now.
func (k *Keyed) Allow(key string, now time.Time) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.entry(key, now).b.Allow(now)
}

// RetryAfter returns key's bucket refill wait (see Bucket.RetryAfter).
func (k *Keyed) RetryAfter(key string, now time.Time) time.Duration {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.entry(key, now).b.RetryAfter(now)
}

// Len returns the number of live buckets, for telemetry and eviction tests.
func (k *Keyed) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.buckets)
}

func (k *Keyed) entry(key string, now time.Time) *keyedEntry {
	if now.Sub(k.sweepAt) >= k.idle {
		for key, e := range k.buckets {
			if now.Sub(e.used) >= k.idle {
				delete(k.buckets, key)
			}
		}
		k.sweepAt = now
	}
	e, ok := k.buckets[key]
	if !ok {
		e = &keyedEntry{b: NewBucket(k.rate, k.burst)}
		k.buckets[key] = e
	}
	e.used = now
	return e
}
