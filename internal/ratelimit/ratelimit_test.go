package ratelimit

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// t0 is an arbitrary virtual-clock epoch; every test advances from it
// explicitly, the way the simulator's scheduler does.
var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestBurstThenRefill(t *testing.T) {
	b := NewBucket(10, 3) // 10 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if !b.Allow(t0) {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if b.Allow(t0) {
		t.Fatal("request beyond burst admitted with no time elapsed")
	}
	// 100ms refills exactly one token at 10/s.
	if !b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Fatal("refilled token denied")
	}
	if b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Fatal("second request admitted after a one-token refill")
	}
}

// TestZeroCapacity: burst 0 admits nothing, ever, and RetryAfter reports the
// bounded "never" sentinel instead of an overflow or a zero.
func TestZeroCapacity(t *testing.T) {
	b := NewBucket(100, 0)
	for _, at := range []time.Time{t0, t0.Add(time.Second), t0.Add(time.Hour)} {
		if b.Allow(at) {
			t.Fatalf("zero-capacity bucket admitted a request at %v", at)
		}
	}
	if got := b.RetryAfter(t0.Add(2 * time.Hour)); got != time.Hour {
		t.Errorf("RetryAfter = %v, want the 1h never-sentinel", got)
	}
	// Negative burst is clamped to zero, not a panic or a weird balance.
	if NewBucket(1, -5).Allow(t0) {
		t.Error("negative-capacity bucket admitted a request")
	}
}

// TestRefillRounding: sub-token refill intervals accumulate without loss
// under virtual time. 1000 steps of 1ms at 1 token/s must admit exactly one
// request at the end — neither zero (truncation per step) nor early.
func TestRefillRounding(t *testing.T) {
	b := NewBucket(1, 1)
	if !b.Allow(t0) {
		t.Fatal("initial token denied")
	}
	now := t0
	admitted := 0
	for i := 0; i < 1000; i++ {
		now = now.Add(time.Millisecond)
		if b.Allow(now) {
			admitted++
			if i < 998 { // float slack only at the very boundary
				t.Fatalf("admitted after only %dms at 1 token/s", i+1)
			}
		}
	}
	if admitted != 1 {
		t.Fatalf("admitted %d over 1s at 1 token/s, want exactly 1", admitted)
	}
}

// TestBurstThenIdle: an idle bucket refills to capacity and no further — a
// long quiet period does not bank an unbounded burst.
func TestBurstThenIdle(t *testing.T) {
	b := NewBucket(10, 5)
	for i := 0; i < 5; i++ {
		b.Allow(t0)
	}
	// An hour idle at 10/s would naively bank 36000 tokens; capacity caps
	// it at 5.
	later := t0.Add(time.Hour)
	admitted := 0
	for i := 0; i < 100; i++ {
		if b.Allow(later) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d after long idle, want burst cap 5", admitted)
	}
}

// TestClockBackwards: time moving backwards neither refills nor debits.
func TestClockBackwards(t *testing.T) {
	b := NewBucket(10, 2)
	b.Allow(t0)
	if got := b.Tokens(t0.Add(-time.Minute)); got != 1 {
		t.Errorf("tokens after backwards step = %v, want 1", got)
	}
	if !b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Error("forward progress after backwards step denied")
	}
}

func TestRetryAfter(t *testing.T) {
	b := NewBucket(10, 1)
	if got := b.RetryAfter(t0); got != 0 {
		t.Fatalf("RetryAfter with a full token = %v, want 0", got)
	}
	b.Allow(t0)
	got := b.RetryAfter(t0)
	if got <= 0 || got > 100*time.Millisecond {
		t.Fatalf("RetryAfter after spend = %v, want (0, 100ms]", got)
	}
	// Waiting the advertised time must actually yield a token.
	if !b.Allow(t0.Add(got)) {
		t.Error("request denied after waiting the advertised RetryAfter")
	}
	// A rate-0 bucket that spent its burst can never refill.
	b2 := NewBucket(0, 1)
	b2.Allow(t0)
	if got := b2.RetryAfter(t0.Add(time.Minute)); got != time.Hour {
		t.Errorf("rate-0 RetryAfter = %v, want the 1h never-sentinel", got)
	}
}

// TestKeyedIsolation: keys meter independently.
func TestKeyedIsolation(t *testing.T) {
	k := NewKeyed(1, 2, 0)
	k.Allow("h1", t0)
	k.Allow("h1", t0)
	if k.Allow("h1", t0) {
		t.Fatal("h1 admitted beyond its burst")
	}
	if !k.Allow("h2", t0) {
		t.Fatal("h2 denied by h1's exhaustion")
	}
	if k.RetryAfter("h1", t0) <= 0 {
		t.Error("exhausted h1 reports no wait")
	}
	if k.RetryAfter("h2", t0) != 0 {
		t.Error("fresh h2 reports a wait")
	}
}

// TestKeyedEviction: buckets idle past the window are swept; an evicted key
// starts over with a full burst.
func TestKeyedEviction(t *testing.T) {
	k := NewKeyed(0, 1, time.Minute) // rate 0: a key's burst never refills
	k.Allow("h1", t0)
	if k.Allow("h1", t0.Add(30*time.Second)) {
		t.Fatal("h1 admitted beyond its never-refilling burst")
	}
	k.Allow("h2", t0.Add(90*time.Second)) // traffic past the window triggers the sweep
	if k.Len() != 1 {
		t.Fatalf("live buckets = %d, want 1 (h1 evicted)", k.Len())
	}
	if !k.Allow("h1", t0.Add(91*time.Second)) {
		t.Fatal("re-created h1 denied its fresh burst")
	}
}

// TestConcurrentAllow: with 8 goroutines hammering one key at a fixed
// virtual instant, exactly burst requests are admitted — the lock makes
// spend-and-check atomic, so concurrency cannot mint tokens.
func TestConcurrentAllow(t *testing.T) {
	const burst, workers, perWorker = 50, 8, 100
	k := NewKeyed(0, burst, 0)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if k.Allow("shared", t0) {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != burst {
		t.Fatalf("admitted %d concurrently, want exactly %d", got, burst)
	}
}
