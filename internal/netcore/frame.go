package netcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"wanac/internal/wire"
)

// Frame layout, shared by both live transports:
//
//	payload := uvarint(len(id)) ++ id ++ wire.Marshal(msg)
//
// Datagram transports (udpnet) put one payload in each datagram. Stream
// transports (tcpnet) prefix each payload with a big-endian u32 length. The
// MaxFrame bound applies to the payload in both directions: an oversized
// outbound message is refused at encode time (and counted as a drop by the
// caller) instead of being written to a peer that would reject it.

// EncodeFrame builds a datagram payload. It fails if the payload would
// exceed maxFrame.
func EncodeFrame(from wire.NodeID, msg wire.Message, maxFrame int) ([]byte, error) {
	id := []byte(from)
	buf := binary.AppendUvarint(make([]byte, 0, 1+len(id)+64), uint64(len(id)))
	buf = append(buf, id...)
	buf, err := wire.AppendMarshal(buf, msg)
	if err != nil {
		return nil, err
	}
	if len(buf) > maxFrame {
		return nil, fmt.Errorf("netcore: frame too large (%d > %d bytes)", len(buf), maxFrame)
	}
	return buf, nil
}

// DecodeFrame parses a datagram payload.
func DecodeFrame(data []byte) (wire.NodeID, wire.Message, error) {
	idLen, n := binary.Uvarint(data)
	if n <= 0 || idLen > uint64(len(data)-n) {
		return "", nil, errors.New("netcore: bad sender id")
	}
	from := wire.NodeID(data[n : n+int(idLen)])
	msg, err := wire.Unmarshal(data[n+int(idLen):])
	if err != nil {
		return "", nil, err
	}
	return from, msg, nil
}

// EncodeStreamFrame builds a length-prefixed stream frame. It fails if the
// payload would exceed maxFrame.
func EncodeStreamFrame(from wire.NodeID, msg wire.Message, maxFrame int) ([]byte, error) {
	id := []byte(from)
	buf := make([]byte, 4, 4+1+len(id)+64)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	buf, err := wire.AppendMarshal(buf, msg)
	if err != nil {
		return nil, err
	}
	if len(buf)-4 > maxFrame {
		return nil, fmt.Errorf("netcore: frame too large (%d > %d bytes)", len(buf)-4, maxFrame)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf, nil
}

// ReadStreamFrame reads one length-prefixed frame, rejecting sizes outside
// (0, maxFrame].
func ReadStreamFrame(r io.Reader, maxFrame int) (wire.NodeID, wire.Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > uint32(maxFrame) {
		return "", nil, fmt.Errorf("netcore: bad frame size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	return DecodeFrame(buf)
}
