package netcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"wanac/internal/wire"
)

// Frame layout, shared by both live transports:
//
//	payload := uvarint(len(id)) ++ id ++ wire.Marshal(msg)
//
// Datagram transports (udpnet) put one payload in each datagram. Stream
// transports (tcpnet) prefix each payload with a big-endian u32 length. The
// MaxFrame bound applies to the payload in both directions: an oversized
// outbound message is refused at encode time (and counted as a drop by the
// caller) instead of being written to a peer that would reject it.

// EncodeFrame builds a datagram payload. It fails if the payload would
// exceed maxFrame. The buffer is presized exactly from wire.Size, so the
// encode never reallocates mid-append regardless of message size.
func EncodeFrame(from wire.NodeID, msg wire.Message, maxFrame int) ([]byte, error) {
	size, err := wire.Size(msg)
	if err != nil {
		return nil, err
	}
	total := FrameOverhead(from) + size
	if total > maxFrame {
		return nil, fmt.Errorf("netcore: frame too large (%d > %d bytes)", total, maxFrame)
	}
	buf := binary.AppendUvarint(make([]byte, 0, total), uint64(len(from)))
	buf = append(buf, from...)
	buf, err = wire.AppendMarshal(buf, msg)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeFrame parses a datagram payload.
func DecodeFrame(data []byte) (wire.NodeID, wire.Message, error) {
	idLen, n := binary.Uvarint(data)
	if n <= 0 || idLen > uint64(len(data)-n) {
		return "", nil, errors.New("netcore: bad sender id")
	}
	from := wire.NodeID(data[n : n+int(idLen)])
	msg, err := wire.Unmarshal(data[n+int(idLen):])
	if err != nil {
		return "", nil, err
	}
	return from, msg, nil
}

// EncodeStreamFrame builds a length-prefixed stream frame. It fails if the
// payload would exceed maxFrame. The buffer is presized exactly from
// wire.Size, so the encode never reallocates mid-append.
func EncodeStreamFrame(from wire.NodeID, msg wire.Message, maxFrame int) ([]byte, error) {
	size, err := wire.Size(msg)
	if err != nil {
		return nil, err
	}
	payload := FrameOverhead(from) + size
	if payload > maxFrame {
		return nil, fmt.Errorf("netcore: frame too large (%d > %d bytes)", payload, maxFrame)
	}
	buf := make([]byte, 4, 4+payload)
	buf = binary.AppendUvarint(buf, uint64(len(from)))
	buf = append(buf, from...)
	buf, err = wire.AppendMarshal(buf, msg)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf, nil
}

// FrameOverhead returns the per-frame header cost for frames from id: the
// uvarint-prefixed sender id every payload starts with. Transports use it
// to pre-validate a message's encoded size against their frame limit
// before queuing it un-encoded.
func FrameOverhead(id wire.NodeID) int { return uvarintLen(uint64(len(id))) + len(id) }

// PackedSize returns the bytes one payload of length n occupies inside a
// packed datagram (uvarint length prefix plus the payload).
func PackedSize(n int) int { return uvarintLen(uint64(n)) + n }

// PackedMarker introduces a packed datagram: several uvarint-length-
// prefixed payloads sharing one datagram (the UDP side of batched flushes).
// A raw frame can never start with this byte, because a frame's first byte
// is the uvarint length of the sender id and node ids are non-empty — so
// receivers can tell the two layouts apart from the first byte alone.
const PackedMarker byte = 0x00

// SplitDatagram appends the payloads carried by one datagram to dst and
// returns it. A datagram starting with PackedMarker is split into its
// length-prefixed payloads; anything else is a single raw payload. The
// returned slices alias data.
func SplitDatagram(data []byte, dst [][]byte) ([][]byte, error) {
	if len(data) == 0 {
		return dst, errors.New("netcore: empty datagram")
	}
	if data[0] != PackedMarker {
		return append(dst, data), nil
	}
	rest := data[1:]
	for len(rest) > 0 {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n == 0 || n > uint64(len(rest)-sz) {
			return dst, errors.New("netcore: bad packed datagram")
		}
		dst = append(dst, rest[sz:sz+int(n)])
		rest = rest[sz+int(n):]
	}
	return dst, nil
}

// Deliver dispatches msg to h, unwrapping transport-level wire.Batch frames
// so handlers only ever see protocol messages. Both live transports route
// inbound traffic through it.
func Deliver(h Handler, from wire.NodeID, msg wire.Message) {
	if b, ok := msg.(wire.Batch); ok {
		for _, m := range b.Msgs {
			if _, nested := m.(wire.Batch); nested {
				continue // the decoder rejects nesting; belt and braces
			}
			h.HandleMessage(from, m)
		}
		return
	}
	h.HandleMessage(from, msg)
}

// ReadStreamFrame reads one length-prefixed frame, rejecting sizes outside
// (0, maxFrame].
func ReadStreamFrame(r io.Reader, maxFrame int) (wire.NodeID, wire.Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > uint32(maxFrame) {
		return "", nil, fmt.Errorf("netcore: bad frame size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	return DecodeFrame(buf)
}
