package netcore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"wanac/internal/telemetry"
)

// TestStatsPeerStates pins the per-peer state map added to
// TransportStats and its agreement with the aggregate tallies.
func TestStatsPeerStates(t *testing.T) {
	g := NewGroup("test", testConfig())
	defer g.Close()
	s := &fakeSender{}
	g.Ensure("m0", func() (Sender, error) { return s, nil })
	g.Ensure("m1", func() (Sender, error) { return nil, fmt.Errorf("refused") })

	p := g.Get("m0")
	p.Enqueue(frame('A'))
	waitFor(t, func() bool { return s.count() == 1 })
	g.Get("m1").Enqueue(frame('B'))
	waitFor(t, func() bool { return g.Stats().PeersBackoff >= 1 })

	st := g.Stats()
	if len(st.Peers) != 2 {
		t.Fatalf("Peers = %v, want 2 entries", st.Peers)
	}
	if st.Peers["m0"] != "up" {
		t.Errorf("m0 state = %q, want up", st.Peers["m0"])
	}
	if st.Peers["m1"] != "backoff" && st.Peers["m1"] != "connecting" {
		t.Errorf("m1 state = %q, want backoff or connecting", st.Peers["m1"])
	}
	// The map and the tallies are taken under one lock, so they must
	// agree.
	byState := map[string]int{}
	for _, state := range st.Peers {
		byState[state]++
	}
	if byState["up"] != st.PeersUp || byState["connecting"] != st.PeersConnecting ||
		byState["backoff"] != st.PeersBackoff {
		t.Errorf("tallies %v disagree with map %v", st, st.Peers)
	}
}

// TestRegisterTransport pins the /metrics view against the raw stats
// snapshot: same numbers, valid exposition.
func TestRegisterTransport(t *testing.T) {
	g := NewGroup("test", testConfig())
	defer g.Close()
	s := &fakeSender{}
	g.Ensure("m0", func() (Sender, error) { return s, nil })
	g.Counters().Sends.Add(3)
	g.Get("m0").Enqueue(frame('A'))
	waitFor(t, func() bool { return s.count() == 1 })

	reg := telemetry.NewRegistry()
	RegisterTransport(reg, g.Stats)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := telemetry.ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("transport exposition invalid: %v\n%s", err, out)
	}
	st := g.Stats()
	for _, line := range []string{
		fmt.Sprintf("wanac_transport_sends_total %d", st.Sends),
		fmt.Sprintf("wanac_transport_bytes_out_total %d", st.BytesOut),
		fmt.Sprintf("wanac_transport_peers_up %d", st.PeersUp),
		fmt.Sprintf(`wanac_transport_peer_state{peer="m0",state="%s"} 1`, st.Peers["m0"]),
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}
