package netcore

import (
	"wanac/internal/telemetry"
	"wanac/internal/wire"
)

// RegisterTransport re-exports a transport's stats through a telemetry
// registry: monotonic counters (sends, drops, dials, reconnects, bytes)
// as func-backed counters, queue depth and per-state peer tallies as
// gauges, and every peer's individual state as a
// wanac_transport_peer_state{peer,state} snapshot set. All families read
// through the same stats snapshot function that backs the expvar
// payload, so /metrics and /debug/vars agree by construction.
//
// stats is typically Transport.Stats (tcpnet/udpnet) or Group.Stats.
func RegisterTransport(reg *telemetry.Registry, stats func() TransportStats) {
	counters := []struct {
		name, help string
		get        func(TransportStats) float64
	}{
		{"wanac_transport_sends_total", "Send calls.",
			func(st TransportStats) float64 { return float64(st.Sends) }},
		{"wanac_transport_drops_total", "Frames dropped on the outbound path (overflow, unknown peer, dial failure, drain deadline).",
			func(st TransportStats) float64 { return float64(st.Drops) }},
		{"wanac_transport_dials_total", "Connection attempts.",
			func(st TransportStats) float64 { return float64(st.Dials) }},
		{"wanac_transport_dial_failures_total", "Failed connection attempts.",
			func(st TransportStats) float64 { return float64(st.DialFailures) }},
		{"wanac_transport_reconnects_total", "Re-established connections to previously up peers.",
			func(st TransportStats) float64 { return float64(st.Reconnects) }},
		{"wanac_transport_bytes_in_total", "Frame bytes received.",
			func(st TransportStats) float64 { return float64(st.BytesIn) }},
		{"wanac_transport_bytes_out_total", "Frame bytes written.",
			func(st TransportStats) float64 { return float64(st.BytesOut) }},
	}
	for _, c := range counters {
		get := c.get
		reg.CounterFunc(c.name, c.help, func() float64 { return get(stats()) })
	}
	gauges := []struct {
		name, help string
		get        func(TransportStats) float64
	}{
		{"wanac_transport_queue_depth", "Frames currently queued across peers.",
			func(st TransportStats) float64 { return float64(st.QueueDepth) }},
		{"wanac_transport_peers_up", "Peers in the up state.",
			func(st TransportStats) float64 { return float64(st.PeersUp) }},
		{"wanac_transport_peers_connecting", "Peers in the connecting state.",
			func(st TransportStats) float64 { return float64(st.PeersConnecting) }},
		{"wanac_transport_peers_backoff", "Peers in the backoff state.",
			func(st TransportStats) float64 { return float64(st.PeersBackoff) }},
	}
	for _, g := range gauges {
		get := g.get
		reg.GaugeFunc(g.name, g.help, func() float64 { return get(stats()) })
	}
	laneCounters := []struct {
		name, help string
		get        func(TransportStats, int) float64
	}{
		{"wanac_transport_lane_enqueued_total", "Messages enqueued per priority lane.",
			func(st TransportStats, ln int) float64 { return float64(st.LaneEnqueued[ln]) }},
		{"wanac_transport_lane_delivered_total", "Messages delivered per priority lane.",
			func(st TransportStats, ln int) float64 { return float64(st.LaneDelivered[ln]) }},
		{"wanac_transport_lane_drops_total", "Messages dropped per priority lane.",
			func(st TransportStats, ln int) float64 { return float64(st.LaneDrops[ln]) }},
	}
	lanes := [2]string{wire.LaneBulk.String(), wire.LaneHigh.String()}
	for _, c := range laneCounters {
		vec := reg.CounterVec(c.name, c.help, "lane")
		for ln, label := range lanes {
			ln, get := ln, c.get
			vec.WithFunc(func() float64 { return get(stats(), ln) }, label)
		}
	}
	depthVec := reg.GaugeVec("wanac_transport_lane_depth",
		"Frames currently queued per priority lane across peers.", "lane")
	for ln, label := range lanes {
		ln := ln
		depthVec.WithFunc(func() float64 { return float64(stats().LaneDepths[ln]) }, label)
	}
	reg.GaugeSet("wanac_transport_peer_state",
		"Per-peer connection state (1 for the current state).",
		[]string{"peer", "state"},
		func(emit func([]string, float64)) {
			for peer, state := range stats().Peers {
				emit([]string{peer, state}, 1)
			}
		})
	reg.CounterFunc("netcore_batches_out_total",
		"Coalesced writer flushes (one wire write each).",
		func() float64 { return float64(stats().BatchesOut) })
	bounds := append([]float64(nil), BatchFrameBounds[:]...)
	reg.HistogramFunc("netcore_batch_frames",
		"Frames put on the wire per coalesced writer flush.", bounds,
		func() telemetry.HistogramSnapshot {
			st := stats()
			counts := st.BatchFrames
			if len(counts) != len(bounds)+1 {
				// Defensive: a stats source that predates batching renders as
				// an empty histogram instead of panicking the scrape.
				counts = make([]uint64, len(bounds)+1)
			}
			var count uint64
			for _, c := range counts {
				count += c
			}
			return telemetry.HistogramSnapshot{
				Upper:  bounds,
				Counts: counts,
				Count:  count,
				Sum:    float64(st.BatchFramesSum),
			}
		})
}
