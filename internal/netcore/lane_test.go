package netcore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"wanac/internal/telemetry"
	"wanac/internal/wire"
)

// TestHighLaneDrainsFirst: control traffic enqueued after a bulk backlog
// still leaves first. With the writer parked, three queries accumulate in
// the bulk lane before two revocation notices arrive in the high lane; the
// flush must put the revocations at the front of the coalesced frame.
func TestHighLaneDrainsFirst(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", backoffConfig(16), ctr,
		func() (Sender, error) { return nil, errors.New("refused") })
	defer func() { p.beginClose(time.Now()); p.Wait() }()
	parkPeer(t, p, ctr)

	for i := uint64(1); i <= 3; i++ {
		p.EnqueueMessage(wire.Query{App: "a", User: "u", Right: wire.RightUse, Nonce: i})
	}
	p.EnqueueMessage(wire.RevokeNotice{App: "a", User: "mallory"})
	p.EnqueueMessage(wire.RevokeNotice{App: "a", User: "trudy"})

	fs := &fakeSender{}
	if !p.Adopt(fs) {
		t.Fatal("adopt refused")
	}
	waitFor(t, func() bool { return fs.count() == 1 })

	fs.mu.Lock()
	raw := fs.frames[0]
	fs.mu.Unlock()
	_, msg, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := msg.(wire.Batch)
	if !ok {
		t.Fatalf("coalesced frame decoded to %T, want wire.Batch", msg)
	}
	if len(b.Msgs) != 5 {
		t.Fatalf("batch carries %d messages, want 5", len(b.Msgs))
	}
	for i := 0; i < 2; i++ {
		if _, ok := b.Msgs[i].(wire.RevokeNotice); !ok {
			t.Errorf("batch[%d] = %T, want RevokeNotice ahead of queries", i, b.Msgs[i])
		}
	}
	for i := 2; i < 5; i++ {
		if q, ok := b.Msgs[i].(wire.Query); !ok || q.Nonce != uint64(i-1) {
			t.Errorf("batch[%d] = %#v, want Query nonce %d (bulk order preserved)", i, b.Msgs[i], i-1)
		}
	}
	// Per-lane delivery accounting: 2 high delivered, 3 bulk delivered; the
	// sacrificial parking heartbeat is the lone high-lane drop.
	if got := ctr.LaneDelivered[wire.LaneHigh].Load(); got != 2 {
		t.Errorf("high delivered = %d, want 2", got)
	}
	if got := ctr.LaneDelivered[wire.LaneBulk].Load(); got != 3 {
		t.Errorf("bulk delivered = %d, want 3", got)
	}
	if got := ctr.LaneDrops[wire.LaneHigh].Load(); got != 1 {
		t.Errorf("high drops = %d, want 1 (parking heartbeat)", got)
	}
	if got := ctr.LaneDrops[wire.LaneBulk].Load(); got != 0 {
		t.Errorf("bulk drops = %d, want 0", got)
	}
}

// TestLaneOverflowIsolated: each lane overflows only into itself — a bulk
// flood cannot evict queued control traffic and vice versa — and the
// conservation invariant delivered+drops == enqueued holds per lane through
// overflow, parking, and close-with-queued drops.
func TestLaneOverflowIsolated(t *testing.T) {
	cfg := Config{
		QueueDepth: 4, LaneDepth: 2,
		BackoffMin: time.Minute, BackoffMax: time.Minute,
		Framing: &Framing{From: "src", Stream: false, Limit: 8 << 10},
	}.withDefaults()
	ctr := &Counters{}
	p := newPeer("x", cfg, ctr, func() (Sender, error) { return nil, errors.New("refused") })
	parkPeer(t, p, ctr) // 1 high-lane enqueue + drop

	for i := uint64(0); i < 10; i++ { // bulk: 6 overflow drops against depth 4
		p.EnqueueMessage(wire.Query{App: "a", User: "u", Right: wire.RightUse, Nonce: i})
	}
	for i := uint64(0); i < 5; i++ { // high: 3 overflow drops against lane depth 2
		p.EnqueueMessage(wire.RevokeNotice{App: "a", User: "u"})
	}
	if got := ctr.LaneDrops[wire.LaneBulk].Load(); got != 6 {
		t.Errorf("bulk overflow drops = %d, want 6", got)
	}
	if got := ctr.LaneDrops[wire.LaneHigh].Load(); got != 4 {
		t.Errorf("high drops = %d, want 4 (1 parking + 3 overflow)", got)
	}
	depths, _ := p.status()
	if depths != [2]int{4, 2} {
		t.Errorf("lane depths = %v, want [4 2]", depths)
	}

	// Close with the writer still parked: the queued remainder is dropped
	// per lane and the books balance exactly.
	p.beginClose(time.Now())
	p.Wait()
	for _, lane := range []wire.Lane{wire.LaneBulk, wire.LaneHigh} {
		enq := ctr.LaneEnqueued[lane].Load()
		del := ctr.LaneDelivered[lane].Load()
		drop := ctr.LaneDrops[lane].Load()
		if del+drop != enq {
			t.Errorf("%s lane: delivered %d + drops %d != enqueued %d", lane, del, drop, enq)
		}
	}
	wantDrops := ctr.LaneDrops[wire.LaneBulk].Load() + ctr.LaneDrops[wire.LaneHigh].Load()
	if got := ctr.Drops.Load(); got != wantDrops {
		t.Errorf("aggregate drops = %d, want %d (sum of lanes)", got, wantDrops)
	}
	if got := ctr.LaneEnqueued[wire.LaneBulk].Load(); got != 10 {
		t.Errorf("bulk enqueued = %d, want 10", got)
	}
	if got := ctr.LaneEnqueued[wire.LaneHigh].Load(); got != 6 {
		t.Errorf("high enqueued = %d, want 6 (1 parking + 5 revokes)", got)
	}
}

// TestLaneStatsAndMetrics pins the per-lane view through Group.Stats and the
// /metrics exposition: depths split by lane, and the lane counter families
// render with bulk/high labels.
func TestLaneStatsAndMetrics(t *testing.T) {
	cfg := Config{
		QueueDepth: 16,
		BackoffMin: time.Minute, BackoffMax: time.Minute,
		Framing: &Framing{From: "src", Stream: false, Limit: 8 << 10},
	}
	g := NewGroup("test", cfg)
	defer g.Close()
	g.Ensure("m0", func() (Sender, error) { return nil, errors.New("refused") })
	p := g.Get("m0")
	parkPeer(t, p, g.Counters())

	p.EnqueueMessage(wire.Query{App: "a", User: "u", Right: wire.RightUse, Nonce: 1})
	p.EnqueueMessage(wire.Query{App: "a", User: "u", Right: wire.RightUse, Nonce: 2})
	p.EnqueueMessage(wire.RevokeNotice{App: "a", User: "u"})

	st := g.Stats()
	if st.LaneDepths != [2]int{2, 1} {
		t.Errorf("lane depths = %v, want [2 1]", st.LaneDepths)
	}
	if st.QueueDepth != 3 {
		t.Errorf("queue depth = %d, want 3", st.QueueDepth)
	}
	if st.LaneEnqueued[wire.LaneBulk] != 2 || st.LaneEnqueued[wire.LaneHigh] != 2 {
		t.Errorf("lane enqueued = %v/%v, want 2/2", st.LaneEnqueued[wire.LaneBulk], st.LaneEnqueued[wire.LaneHigh])
	}

	reg := telemetry.NewRegistry()
	RegisterTransport(reg, g.Stats)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := telemetry.ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, line := range []string{
		`wanac_transport_lane_enqueued_total{lane="bulk"} 2`,
		`wanac_transport_lane_enqueued_total{lane="high"} 2`,
		`wanac_transport_lane_drops_total{lane="high"} 1`,
		`wanac_transport_lane_depth{lane="bulk"} 2`,
		`wanac_transport_lane_depth{lane="high"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}
