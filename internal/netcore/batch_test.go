package netcore

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wanac/internal/telemetry"
	"wanac/internal/wire"
)

// backoffConfig returns a config whose backoff is effectively infinite, so a
// peer parked by one failed dial holds its queue until the test releases it
// (Adopt, ClearBackoff, or SetDial) — the deterministic way to accumulate a
// multi-entry batch for one flush.
func backoffConfig(depth int) Config {
	return Config{
		QueueDepth: depth,
		BackoffMin: time.Minute,
		BackoffMax: time.Minute,
		Framing:    &Framing{From: "src", Stream: false, Limit: 8 << 10},
	}.withDefaults()
}

// parkPeer drives p into backoff by sacrificing one message to a failing
// dial, so everything enqueued afterwards accumulates in the queue.
func parkPeer(t *testing.T, p *Peer, ctr *Counters) {
	t.Helper()
	p.EnqueueMessage(wire.Heartbeat{Nonce: 9999})
	waitFor(t, func() bool { return ctr.Drops.Load() == 1 && p.State() == StateBackoff })
}

// TestFlushCoalescesIntoBatchFrame: messages drained in one flush travel as
// a single wire.Batch frame — one frame header, one write — and the batch
// counters record exactly one single-frame flush.
func TestFlushCoalescesIntoBatchFrame(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", backoffConfig(16), ctr,
		func() (Sender, error) { return nil, errors.New("refused") })
	defer func() { p.beginClose(time.Now()); p.Wait() }()
	parkPeer(t, p, ctr)

	for i := uint64(1); i <= 3; i++ {
		p.EnqueueMessage(wire.Query{App: "a", User: "u", Right: wire.RightUse, Nonce: i})
	}
	fs := &fakeSender{}
	if !p.Adopt(fs) {
		t.Fatal("adopt refused")
	}
	waitFor(t, func() bool { return fs.count() == 1 })

	fs.mu.Lock()
	raw := fs.frames[0]
	fs.mu.Unlock()
	from, msg, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if from != "src" {
		t.Errorf("frame sender = %q, want src", from)
	}
	b, ok := msg.(wire.Batch)
	if !ok {
		t.Fatalf("coalesced frame decoded to %T, want wire.Batch", msg)
	}
	if len(b.Msgs) != 3 {
		t.Fatalf("batch carries %d messages, want 3", len(b.Msgs))
	}
	for i, m := range b.Msgs {
		if q, ok := m.(wire.Query); !ok || q.Nonce != uint64(i+1) {
			t.Errorf("batch[%d] = %#v, want Query nonce %d (order preserved)", i, m, i+1)
		}
	}
	if got := ctr.BatchesOut.Load(); got != 1 {
		t.Errorf("batches_out = %d, want 1", got)
	}
	if got := ctr.BatchFramesSum.Load(); got != 1 {
		t.Errorf("batch frames sum = %d, want 1 (three messages, one frame)", got)
	}
	if got := ctr.batchFrames[0].Load(); got != 1 {
		t.Errorf("le=1 bucket = %d, want 1", got)
	}
	if got := ctr.BytesOut.Load(); got != uint64(len(raw)) {
		t.Errorf("bytes_out = %d, want %d", got, len(raw))
	}
}

// TestFlushSplitsAtFrameLimit: when coalescing would exceed the frame limit,
// the flush partitions the run into individual frames and writes them with
// one WriteBatch call.
func TestFlushSplitsAtFrameLimit(t *testing.T) {
	msg := wire.Invoke{App: "a", User: "u", Payload: []byte("0123456789abcdef")}
	sz, err := wire.Size(msg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := backoffConfig(16)
	// Exactly one message fits per frame; two cannot share.
	cfg.Framing = &Framing{From: "src", Stream: false, Limit: FrameOverhead("src") + sz}

	ctr := &Counters{}
	p := newPeer("x", cfg, ctr, func() (Sender, error) { return nil, errors.New("refused") })
	defer func() { p.beginClose(time.Now()); p.Wait() }()
	parkPeer(t, p, ctr)

	for i := 0; i < 3; i++ {
		p.EnqueueMessage(msg)
	}
	fs := &fakeSender{}
	p.Adopt(fs)
	waitFor(t, func() bool { return fs.count() == 3 })

	fs.mu.Lock()
	frames := fs.frames
	fs.mu.Unlock()
	for i, raw := range frames {
		_, got, err := DecodeFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := got.(wire.Invoke); !ok {
			t.Errorf("frame %d decoded to %T, want plain Invoke (no batch wrapper)", i, got)
		}
	}
	if got := ctr.BatchesOut.Load(); got != 1 {
		t.Errorf("batches_out = %d, want 1 flush", got)
	}
	if got := ctr.BatchFramesSum.Load(); got != 3 {
		t.Errorf("batch frames sum = %d, want 3", got)
	}
	if got := ctr.batchFrames[2].Load(); got != 1 {
		t.Errorf("le=4 bucket = %d, want 1 (a 3-frame flush)", got)
	}
}

// TestEnqueueCompactsDrainedPrefix drives the queue's prefix-reclaim path:
// with the writer parked in backoff, overflow drops advance qhead until the
// drained prefix dominates the array and is compacted away — without losing
// or reordering the surviving entries.
func TestEnqueueCompactsDrainedPrefix(t *testing.T) {
	cfg := Config{QueueDepth: 64, BackoffMin: time.Minute, BackoffMax: time.Minute}.withDefaults()
	ctr := &Counters{}
	fs := &fakeSender{}
	p := newPeer("x", cfg, ctr, func() (Sender, error) { return nil, errors.New("refused") })
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	p.Enqueue(frame(0)) // sacrificial: parks the writer in backoff
	waitFor(t, func() bool { return ctr.Drops.Load() == 1 && p.State() == StateBackoff })

	// 127 more frames against a 64-deep queue: 63 overflow drops advance
	// qhead one per drop; the 63rd crosses the compaction threshold
	// (qhead > 32 and drained prefix >= half the array).
	for b := byte(1); b <= 127; b++ {
		p.Enqueue(frame(b))
	}
	p.mu.Lock()
	bulk := &p.lanes[wire.LaneBulk]
	qhead, qlen := bulk.qhead, len(bulk.q)
	first, last := bulk.q[bulk.qhead].frame[0], bulk.q[len(bulk.q)-1].frame[0]
	p.mu.Unlock()
	if qhead != 0 {
		t.Errorf("qhead = %d, want 0 (drained prefix compacted)", qhead)
	}
	if qlen != 64 {
		t.Errorf("len(q) = %d, want 64 (backing array shrunk to live entries)", qlen)
	}
	if first != 64 || last != 127 {
		t.Errorf("live range = [%d..%d], want [64..127]", first, last)
	}
	if got := ctr.Drops.Load(); got != 64 {
		t.Errorf("drops = %d, want 64 (1 sacrificial + 63 overflow)", got)
	}

	// Release the peer: the survivors must arrive intact and in order.
	p.SetDial(func() (Sender, error) { return fs, nil }, false)
	waitFor(t, func() bool { return fs.count() == 64 })
	fs.mu.Lock()
	ok := fs.frames[0][0] == 64 && fs.frames[63][0] == 127
	fs.mu.Unlock()
	if !ok {
		t.Error("compaction reordered or corrupted surviving frames")
	}
	if got := ctr.Drops.Load(); got != 64 {
		t.Errorf("drops after delivery = %d, want 64 (no double-count)", got)
	}
}

// TestDrainDeadlineDropsQueued: a close deadline expiring with frames still
// held back by backoff drops exactly the queued count, promptly.
func TestDrainDeadlineDropsQueued(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", backoffConfig(16), ctr,
		func() (Sender, error) { return nil, errors.New("refused") })
	parkPeer(t, p, ctr)

	for i := uint64(1); i <= 5; i++ {
		p.EnqueueMessage(wire.Heartbeat{Nonce: i})
	}
	start := time.Now()
	p.beginClose(time.Now().Add(40 * time.Millisecond))
	p.Wait()
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("close took %v, want bounded by the 40ms drain deadline", el)
	}
	if got := ctr.Drops.Load(); got != 6 {
		t.Errorf("drops = %d, want 6 (1 sacrificial + exactly the 5 queued)", got)
	}
}

// partialSender accepts frames until a scripted point, then fails the write,
// reporting exactly how many frames made it out — the transport contract a
// mid-batch TCP write error produces.
type partialSender struct {
	mu        sync.Mutex
	frames    [][]byte
	failAfter int // fail WriteBatch after accepting this many frames; -1 = never
}

func (s *partialSender) WriteFrame(f []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAfter == 0 {
		s.failAfter = -1
		return errors.New("scripted write failure")
	}
	if s.failAfter > 0 {
		s.failAfter--
	}
	s.frames = append(s.frames, append([]byte(nil), f...))
	return nil
}

func (s *partialSender) WriteBatch(frames net.Buffers) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	written := 0
	for _, f := range frames {
		if s.failAfter >= 0 && written == s.failAfter {
			s.failAfter = -1
			return written, errors.New("scripted mid-batch write failure")
		}
		s.frames = append(s.frames, append([]byte(nil), f...))
		written++
	}
	return written, nil
}

func (s *partialSender) Close() error { return nil }

func (s *partialSender) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []byte
	for _, f := range s.frames {
		out = append(out, f[0])
	}
	return out
}

// TestPartialBatchRetriesOnFreshConnection: a mid-batch write failure
// delivers the unwritten remainder on one fresh connection — already-written
// frames are never re-sent, nothing is dropped, and every counter is exact.
func TestPartialBatchRetriesOnFreshConnection(t *testing.T) {
	ctr := &Counters{}
	s1 := &partialSender{failAfter: 2}
	s2 := &partialSender{failAfter: -1}
	var mu sync.Mutex
	script := []func() (Sender, error){
		func() (Sender, error) { return nil, errors.New("refused") }, // parks the peer
		func() (Sender, error) { return s1, nil },
		func() (Sender, error) { return s2, nil },
	}
	dial := func() (Sender, error) {
		mu.Lock()
		next := script[0]
		script = script[1:]
		mu.Unlock()
		return next()
	}
	cfg := Config{QueueDepth: 16, BackoffMin: time.Minute, BackoffMax: time.Minute}.withDefaults()
	p := newPeer("x", cfg, ctr, dial)
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	p.Enqueue(frame(0)) // sacrificial
	waitFor(t, func() bool { return ctr.Drops.Load() == 1 && p.State() == StateBackoff })
	for b := byte(1); b <= 5; b++ {
		p.Enqueue(frame(b))
	}
	p.ClearBackoff()
	waitFor(t, func() bool { return len(s2.bytes()) == 3 })

	if got := s1.bytes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("first connection got %v, want [1 2]", got)
	}
	if got := s2.bytes(); got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Errorf("retry connection got %v, want [3 4 5] (no re-send, no loss)", got)
	}
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"drops", ctr.Drops.Load(), 1}, // the sacrificial frame only
		{"dials", ctr.Dials.Load(), 3},
		{"dial_failures", ctr.DialFailures.Load(), 1},
		{"reconnects", ctr.Reconnects.Load(), 1},
		{"bytes_out", ctr.BytesOut.Load(), 5},
		{"batches_out", ctr.BatchesOut.Load(), 2}, // 2 frames + 3 frames
		{"batch_frames_sum", ctr.BatchFramesSum.Load(), 5},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestPartialBatchDropsRemainderExactlyOnce: when the retry connection also
// cannot be established, the unwritten remainder is dropped exactly once —
// delivered + dropped equals enqueued, with no double-count and no loss of
// accounting.
func TestPartialBatchDropsRemainderExactlyOnce(t *testing.T) {
	ctr := &Counters{}
	s1 := &partialSender{failAfter: 2}
	var mu sync.Mutex
	script := []func() (Sender, error){
		func() (Sender, error) { return nil, errors.New("refused") }, // parks the peer
		func() (Sender, error) { return s1, nil },
		func() (Sender, error) { return nil, errors.New("refused") }, // retry dial fails
	}
	dial := func() (Sender, error) {
		mu.Lock()
		next := script[0]
		script = script[1:]
		mu.Unlock()
		return next()
	}
	cfg := Config{QueueDepth: 16, BackoffMin: time.Minute, BackoffMax: time.Minute}.withDefaults()
	p := newPeer("x", cfg, ctr, dial)
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	p.Enqueue(frame(0)) // sacrificial
	waitFor(t, func() bool { return ctr.Drops.Load() == 1 && p.State() == StateBackoff })
	for b := byte(1); b <= 5; b++ {
		p.Enqueue(frame(b))
	}
	p.ClearBackoff()
	// 2 delivered on s1, retry dial refused, remaining 3 dropped once.
	waitFor(t, func() bool { return ctr.Drops.Load() == 4 })

	if got := s1.bytes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("delivered %v, want [1 2]", got)
	}
	if got := ctr.DialFailures.Load(); got != 2 {
		t.Errorf("dial_failures = %d, want 2", got)
	}
	if got := ctr.BytesOut.Load(); got != 2 {
		t.Errorf("bytes_out = %d, want 2 (only the delivered frames)", got)
	}
	// Conservation: 6 enqueued = 2 delivered + 4 dropped, each exactly once.
	if delivered, dropped := uint64(len(s1.bytes())), ctr.Drops.Load(); delivered+dropped != 6 {
		t.Errorf("delivered %d + dropped %d != 6 enqueued", delivered, dropped)
	}
}

// discardSender is an allocation-free sink for the steady-state budget test.
type discardSender struct{}

func (discardSender) WriteFrame([]byte) error                    { return nil }
func (discardSender) WriteBatch(frames net.Buffers) (int, error) { return len(frames), nil }
func (discardSender) Close() error                               { return nil }

// TestBatchedSendZeroAllocs pins the steady-state send path at zero
// allocations per message with batching enabled: enqueue, drain, size,
// coalesce, encode, and write all run on reused writer-owned buffers.
func TestBatchedSendZeroAllocs(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", backoffConfig(256), ctr,
		func() (Sender, error) { return discardSender{}, nil })
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	msg := wire.Message(wire.Query{App: "app", User: "user", Right: wire.RightUse, Nonce: 7})
	drain := func() {
		for {
			p.mu.Lock()
			empty := p.lanes[wire.LaneBulk].depth() == 0 && p.lanes[wire.LaneHigh].depth() == 0
			p.mu.Unlock()
			if empty {
				return
			}
			runtime.Gosched()
		}
	}
	// Warm up until every reusable buffer (queue, batch, encode buffer,
	// pieces, net.Buffers, coalescing run) reaches steady capacity.
	for i := 0; i < 50; i++ {
		for j := 0; j < 8; j++ {
			p.EnqueueMessage(msg)
		}
		drain()
	}
	allocs := testing.AllocsPerRun(200, func() {
		for j := 0; j < 8; j++ {
			p.EnqueueMessage(msg)
		}
		drain()
	})
	if allocs > 0 {
		t.Errorf("batched send path allocates %.2f objects per 8-message burst, budget is 0", allocs)
	}
	if ctr.BatchesOut.Load() == 0 || ctr.Drops.Load() != 0 {
		t.Errorf("batches=%d drops=%d: messages did not flow through the batched path",
			ctr.BatchesOut.Load(), ctr.Drops.Load())
	}
}

// TestEncodeFramePresizedExactly pins the satellite fix: both frame encoders
// presize from wire.Size, so encoding is a single exact allocation with no
// mid-append realloc, regardless of message size.
func TestEncodeFramePresizedExactly(t *testing.T) {
	// Pre-boxed like the real send path, so the measurement sees only the
	// encoder's own allocations, not interface conversion at the call site.
	big := wire.Message(wire.Sealed{User: "u", Frame: make([]byte, 32<<10), Sig: make([]byte, 64)})

	df, err := EncodeFrame("node-a", big, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if cap(df) != len(df) {
		t.Errorf("EncodeFrame cap %d != len %d: buffer not presized exactly", cap(df), len(df))
	}
	sf, err := EncodeStreamFrame("node-a", big, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if cap(sf) != len(sf) {
		t.Errorf("EncodeStreamFrame cap %d != len %d: buffer not presized exactly", cap(sf), len(sf))
	}

	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := EncodeFrame("node-a", big, DefaultMaxFrame); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Errorf("EncodeFrame allocates %.1f objects/op, budget is 1 (the frame buffer)", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := EncodeStreamFrame("node-a", big, DefaultMaxFrame); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Errorf("EncodeStreamFrame allocates %.1f objects/op, budget is 1 (the frame buffer)", allocs)
	}
}

// TestSplitDatagram covers both datagram layouts and the malformed cases.
func TestSplitDatagram(t *testing.T) {
	raw := []byte{5, 'h', 'e', 'l', 'l', 'o'} // uvarint id-len 5: a plain frame
	parts, err := SplitDatagram(raw, nil)
	if err != nil || len(parts) != 1 || &parts[0][0] != &raw[0] {
		t.Errorf("raw datagram: parts=%v err=%v, want the datagram itself", parts, err)
	}

	packed := []byte{PackedMarker, 2, 'a', 'b', 3, 'c', 'd', 'e', 1, 'f'}
	parts, err = SplitDatagram(packed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 || string(parts[0]) != "ab" || string(parts[1]) != "cde" || string(parts[2]) != "f" {
		t.Errorf("packed datagram split = %q", parts)
	}

	bad := [][]byte{
		nil,                    // empty datagram
		{PackedMarker, 5, 'a'}, // length overruns the datagram
		{PackedMarker, 0},      // zero-length payload
		{PackedMarker, 0x80},   // truncated uvarint
	}
	for i, d := range bad {
		if _, err := SplitDatagram(d, nil); err == nil {
			t.Errorf("malformed datagram %d accepted", i)
		}
	}
}

// recordingHandler captures Deliver dispatches.
type recordingHandler struct {
	from []wire.NodeID
	msgs []wire.Message
}

func (h *recordingHandler) HandleMessage(from wire.NodeID, msg wire.Message) {
	h.from = append(h.from, from)
	h.msgs = append(h.msgs, msg)
}

// TestDeliverUnwrapsBatch: handlers only ever see protocol messages, in send
// order, whether or not the transport coalesced them.
func TestDeliverUnwrapsBatch(t *testing.T) {
	h := &recordingHandler{}
	Deliver(h, "a", wire.Heartbeat{Nonce: 1})
	Deliver(h, "b", wire.Batch{Msgs: []wire.Message{
		wire.Query{Nonce: 2},
		wire.Heartbeat{Nonce: 3},
	}})
	if len(h.msgs) != 3 {
		t.Fatalf("dispatched %d messages, want 3", len(h.msgs))
	}
	if hb, ok := h.msgs[0].(wire.Heartbeat); !ok || hb.Nonce != 1 || h.from[0] != "a" {
		t.Errorf("dispatch 0 = %v from %s", h.msgs[0], h.from[0])
	}
	if q, ok := h.msgs[1].(wire.Query); !ok || q.Nonce != 2 || h.from[1] != "b" {
		t.Errorf("dispatch 1 = %v from %s", h.msgs[1], h.from[1])
	}
	if hb, ok := h.msgs[2].(wire.Heartbeat); !ok || hb.Nonce != 3 {
		t.Errorf("dispatch 2 = %v", h.msgs[2])
	}
}

// TestRegisterTransportBatchMetrics scrapes the batching families through
// the real render path and checks every series exactly against scripted
// counter updates.
func TestRegisterTransportBatchMetrics(t *testing.T) {
	ctr := &Counters{}
	ctr.observeBatch(1)
	ctr.observeBatch(3)
	ctr.observeBatch(200) // beyond the last bound: lands in +Inf only

	reg := telemetry.NewRegistry()
	RegisterTransport(reg, func() TransportStats { return ctr.snapshot() })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	types, err := telemetry.ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if types["netcore_batches_out_total"] != "counter" {
		t.Errorf("netcore_batches_out_total type = %q, want counter", types["netcore_batches_out_total"])
	}
	if types["netcore_batch_frames"] != "histogram" {
		t.Errorf("netcore_batch_frames type = %q, want histogram", types["netcore_batch_frames"])
	}
	for _, want := range []string{
		"netcore_batches_out_total 3",
		`netcore_batch_frames_bucket{le="1"} 1`,
		`netcore_batch_frames_bucket{le="2"} 1`,
		`netcore_batch_frames_bucket{le="4"} 2`,
		`netcore_batch_frames_bucket{le="128"} 2`,
		`netcore_batch_frames_bucket{le="+Inf"} 3`,
		"netcore_batch_frames_sum 204",
		"netcore_batch_frames_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	// A stats source that predates batching (no histogram counts) must
	// render an empty histogram, not a panic.
	reg2 := telemetry.NewRegistry()
	RegisterTransport(reg2, func() TransportStats { return TransportStats{} })
	var sb2 strings.Builder
	if err := reg2.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParseText(strings.NewReader(sb2.String())); err != nil {
		t.Fatalf("legacy-stats exposition does not parse: %v", err)
	}
}
