package netcore_test

// Churn tests: kill and restart a listener mid-traffic and require that
// senders reconnect within the backoff bound, that no message is ever
// dispatched to the wrong handler, and that the whole exercise leaks no
// goroutines. Run against both real transports (tcpnet and udpnet), which
// share the netcore writer/backoff machinery under test here.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wanac/internal/netcore"
	"wanac/internal/tcpnet"
	"wanac/internal/udpnet"
	"wanac/internal/wire"
)

// transport is the structural surface shared by tcpnet.Node and
// udpnet.Node that the churn scenario needs.
type transport interface {
	ID() wire.NodeID
	Addr() string
	AddPeer(id wire.NodeID, addr string) error
	SetHandler(h netcore.Handler)
	Stats() netcore.TransportStats
	Send(to wire.NodeID, msg wire.Message)
	Close() error
}

var (
	_ transport = (*tcpnet.Node)(nil)
	_ transport = (*udpnet.Node)(nil)
)

func churnConfig() netcore.Config {
	return netcore.BuildConfig(
		netcore.WithBackoff(10*time.Millisecond, 150*time.Millisecond),
		netcore.WithDialTimeout(250*time.Millisecond),
		netcore.WithDrainTimeout(100*time.Millisecond),
	)
}

// tagCollector records deliveries and flags any message not tagged for this
// receiver (a frame dispatched to the wrong handler).
type tagCollector struct {
	want  wire.AppID
	n     atomic.Int64
	wrong atomic.Int64
}

func (c *tagCollector) HandleMessage(from wire.NodeID, msg wire.Message) {
	q, ok := msg.(wire.Query)
	if !ok || q.App != c.want {
		c.wrong.Add(1)
		return
	}
	c.n.Add(1)
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// settleGoroutines waits for the goroutine count to drop to at most limit,
// returning the final count.
func settleGoroutines(limit int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestChurnTCP(t *testing.T) {
	runChurn(t, true, func(id wire.NodeID, addr string) (transport, error) {
		return tcpnet.ListenConfig(id, addr, churnConfig())
	})
}

func TestChurnUDP(t *testing.T) {
	runChurn(t, false, func(id wire.NodeID, addr string) (transport, error) {
		return udpnet.ListenConfig(id, addr, churnConfig())
	})
}

func runChurn(t *testing.T, tcp bool, newNode func(id wire.NodeID, addr string) (transport, error)) {
	baseline := runtime.NumGoroutine()

	h, err := newNode("h0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := newNode("m1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := newNode("m2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m1Addr := m1.Addr()
	rec1 := &tagCollector{want: "m1"}
	rec2 := &tagCollector{want: "m2"}
	m1.SetHandler(rec1)
	m2.SetHandler(rec2)
	if err := h.AddPeer("m1", m1Addr); err != nil {
		t.Fatal(err)
	}
	if err := h.AddPeer("m2", m2.Addr()); err != nil {
		t.Fatal(err)
	}

	// Background traffic: tagged queries to both peers, every 2ms, until
	// stopped. The tag lets each receiver detect misrouted frames.
	stop := make(chan struct{})
	var senders sync.WaitGroup
	senders.Add(1)
	go func() {
		defer senders.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				h.Send("m1", wire.Query{App: "m1", Nonce: seq})
				h.Send("m2", wire.Query{App: "m2", Nonce: seq})
			}
		}
	}()

	if !waitUntil(t, 5*time.Second, func() bool { return rec1.n.Load() >= 5 && rec2.n.Load() >= 5 }) {
		t.Fatal("initial traffic never flowed")
	}

	// Kill m1 mid-traffic; senders keep running and must not stall m2.
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	atM2 := rec2.n.Load()
	time.Sleep(300 * time.Millisecond) // let backoff engage while m1 is down
	if rec2.n.Load() <= atM2 {
		t.Fatal("traffic to the healthy peer stalled while m1 was down")
	}

	// Restart m1 on the same address (bind can need a few tries while the
	// old socket tears down).
	rec1b := &tagCollector{want: "m1"}
	var m1b transport
	for try := 0; ; try++ {
		m1b, err = newNode("m1", m1Addr)
		if err == nil {
			break
		}
		if try > 100 {
			t.Fatalf("rebind %s: %v", m1Addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	m1b.SetHandler(rec1b)
	restarted := time.Now()

	// Delivery must resume within the reconnect bound: one full backoff
	// period plus a dial, with generous slack for race-detector runs.
	cfg := churnConfig()
	bound := 3*(cfg.BackoffMax+cfg.DialTimeout) + time.Second
	if !waitUntil(t, bound, func() bool { return rec1b.n.Load() >= 5 }) {
		t.Fatalf("delivery did not resume within %v of restart (stats %+v)", bound, h.Stats())
	}
	t.Logf("reconnected in %v", time.Since(restarted))

	close(stop)
	senders.Wait()

	if tcp {
		st := h.Stats()
		if st.DialFailures == 0 {
			t.Errorf("stats = %+v, want dial failures while m1 was down", st)
		}
		if st.Reconnects == 0 {
			t.Errorf("stats = %+v, want a reconnect after restart", st)
		}
	}
	if w := rec1.wrong.Load() + rec1b.wrong.Load() + rec2.wrong.Load(); w != 0 {
		t.Errorf("%d messages reached the wrong handler", w)
	}

	for _, n := range []transport{h, m2, m1b} {
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}

	// Everything is closed: writer goroutines, read loops, and accept loops
	// must all have exited.
	limit := baseline + 3
	if n := settleGoroutines(limit); n > limit {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d running, baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
