package netcore

import (
	"sync"
	"time"

	"wanac/internal/wire"
)

// Group is the peer set of one transport node: it creates peers on demand,
// aggregates their stats with the shared counters, runs the optional
// periodic stats publisher, and closes every peer (draining queues) on
// shutdown.
type Group struct {
	name string
	cfg  Config
	ctr  Counters

	mu     sync.Mutex
	peers  map[wire.NodeID]*Peer
	closed bool

	statsStop chan struct{}
	statsDone chan struct{}
}

// NewGroup creates a peer group for the named node. The config is completed
// with defaults; retrieve the effective values via Config.
func NewGroup(name string, cfg Config) *Group {
	g := &Group{
		name:  name,
		cfg:   cfg.withDefaults(),
		peers: make(map[wire.NodeID]*Peer),
	}
	if g.cfg.StatsInterval > 0 {
		sink := g.cfg.StatsSink
		if sink == nil {
			sink = logSink(name)
		}
		g.statsStop = make(chan struct{})
		g.statsDone = make(chan struct{})
		go g.statsLoop(sink)
	}
	return g
}

// Config returns the group's effective (default-completed) configuration.
func (g *Group) Config() Config { return g.cfg }

// Counters returns the shared counters for the transport's read loops and
// send paths to update.
func (g *Group) Counters() *Counters { return &g.ctr }

// Get returns the peer for id, or nil if none exists.
func (g *Group) Get(id wire.NodeID) *Peer {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peers[id]
}

// Ensure returns the peer for id, creating it (with the given dial
// function) if absent. An existing peer is returned unchanged — use
// Peer.SetDial to re-point it.
func (g *Group) Ensure(id wire.NodeID, dial DialFunc) *Peer {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	if p, ok := g.peers[id]; ok {
		return p
	}
	p := newPeer(id, g.cfg, &g.ctr, dial)
	g.peers[id] = p
	return p
}

// Stats returns a snapshot of the counters plus current queue depths and
// peer health states.
func (g *Group) Stats() TransportStats {
	st := g.ctr.snapshot()
	g.mu.Lock()
	if len(g.peers) > 0 {
		st.Peers = make(map[string]string, len(g.peers))
	}
	for id, p := range g.peers {
		depths, state := p.status()
		for ln, d := range depths {
			st.QueueDepth += d
			st.LaneDepths[ln] += d
		}
		st.Peers[string(id)] = state.String()
		switch state {
		case StateUp:
			st.PeersUp++
		case StateConnecting:
			st.PeersConnecting++
		case StateBackoff:
			st.PeersBackoff++
		}
	}
	g.mu.Unlock()
	return st
}

// Close stops the stats publisher and closes every peer, giving their
// writers until the drain timeout to flush queued frames, and waits for
// them to exit.
func (g *Group) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	peers := make([]*Peer, 0, len(g.peers))
	for _, p := range g.peers {
		peers = append(peers, p)
	}
	g.mu.Unlock()

	if g.statsStop != nil {
		close(g.statsStop)
		<-g.statsDone
	}
	deadline := time.Now().Add(g.cfg.DrainTimeout)
	for _, p := range peers {
		p.beginClose(deadline)
	}
	for _, p := range peers {
		p.Wait()
	}
}

func (g *Group) statsLoop(sink func(TransportStats)) {
	defer close(g.statsDone)
	t := time.NewTicker(g.cfg.StatsInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			sink(g.Stats())
		case <-g.statsStop:
			return
		}
	}
}
