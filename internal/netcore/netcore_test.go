package netcore

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"wanac/internal/wire"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fakeSender records frames and fails writes on demand.
type fakeSender struct {
	mu       sync.Mutex
	frames   [][]byte
	failNext bool
	closed   bool
}

func (s *fakeSender) WriteFrame(f []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failNext {
		s.failNext = false
		return errors.New("fake write error")
	}
	s.frames = append(s.frames, append([]byte(nil), f...))
	return nil
}

func (s *fakeSender) WriteBatch(frames net.Buffers) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failNext {
		s.failNext = false
		return 0, errors.New("fake write error")
	}
	for _, f := range frames {
		s.frames = append(s.frames, append([]byte(nil), f...))
	}
	return len(frames), nil
}

func (s *fakeSender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *fakeSender) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func (s *fakeSender) setFailNext() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = true
}

func testConfig() Config {
	return Config{
		QueueDepth:   2,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	}.withDefaults()
}

func frame(b byte) []byte { return []byte{b} }

// TestFrameRoundTrip covers the shared stream and datagram framing.
func TestFrameRoundTrip(t *testing.T) {
	msg := wire.Query{App: "x", User: "u", Right: wire.RightUse, Nonce: 3}

	sf, err := EncodeStreamFrame("node-a", msg, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	from, got, err := ReadStreamFrame(bytes.NewReader(sf), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if from != "node-a" {
		t.Errorf("stream from = %q", from)
	}
	if q, ok := got.(wire.Query); !ok || q.Nonce != 3 {
		t.Errorf("stream msg = %#v", got)
	}

	df, err := EncodeFrame("node-b", msg, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	from, got, err = DecodeFrame(df)
	if err != nil {
		t.Fatal(err)
	}
	if from != "node-b" {
		t.Errorf("datagram from = %q", from)
	}
	if q, ok := got.(wire.Query); !ok || q.Nonce != 3 {
		t.Errorf("datagram msg = %#v", got)
	}
}

func TestFrameRejectsBadSizes(t *testing.T) {
	if _, _, err := ReadStreamFrame(bytes.NewReader([]byte{0, 0, 0, 0}), DefaultMaxFrame); err == nil {
		t.Error("zero-size frame accepted")
	}
	if _, _, err := ReadStreamFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF}), DefaultMaxFrame); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, _, err := ReadStreamFrame(bytes.NewReader([]byte{0, 0}), DefaultMaxFrame); err == nil {
		t.Error("truncated header accepted")
	}
}

// TestFrameEnforcesOutboundBound: oversized messages are refused at encode
// time on both framings, so they can never reach a peer.
func TestFrameEnforcesOutboundBound(t *testing.T) {
	big := wire.Invoke{App: "x", User: "u", Payload: make([]byte, 4096)}
	if _, err := EncodeStreamFrame("a", big, 1024); err == nil {
		t.Error("oversized stream frame encoded")
	}
	if _, err := EncodeFrame("a", big, 1024); err == nil {
		t.Error("oversized datagram frame encoded")
	}
	if _, err := EncodeStreamFrame("a", big, DefaultMaxFrame); err != nil {
		t.Errorf("frame within bound rejected: %v", err)
	}
}

// TestQueueOverflowDropsOldest pins the exact overflow accounting: with the
// writer stuck dialing and QueueDepth=2, five sends keep the two newest
// frames and count two drops (the first frame is already held by the
// writer).
func TestQueueOverflowDropsOldest(t *testing.T) {
	ctr := &Counters{}
	fs := &fakeSender{}
	entered := make(chan struct{})
	release := make(chan struct{})
	dial := func() (Sender, error) {
		close(entered)
		<-release
		return fs, nil
	}
	p := newPeer("x", testConfig(), ctr, dial)
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	p.Enqueue(frame(1))
	<-entered // writer holds frame 1 and is blocked in dial
	for b := byte(2); b <= 5; b++ {
		p.Enqueue(frame(b))
	}
	if got := ctr.Drops.Load(); got != 2 {
		t.Fatalf("drops after overflow = %d, want 2", got)
	}
	close(release)
	waitFor(t, func() bool { return fs.count() == 3 })

	fs.mu.Lock()
	var got []byte
	for _, f := range fs.frames {
		got = append(got, f[0])
	}
	fs.mu.Unlock()
	if got[0] != 1 || got[1] != 4 || got[2] != 5 {
		t.Errorf("delivered frames = %v, want [1 4 5] (oldest dropped first)", got)
	}
	if d := ctr.Dials.Load(); d != 1 {
		t.Errorf("dials = %d, want 1", d)
	}
	if f := ctr.DialFailures.Load(); f != 0 {
		t.Errorf("dial failures = %d, want 0", f)
	}
	if b := ctr.BytesOut.Load(); b != 3 {
		t.Errorf("bytes out = %d, want 3", b)
	}
}

// TestScriptedFailureCounters runs a scripted connect/fail/reconnect
// scenario and checks every counter exactly: dial ok, write failure forcing
// a redial that fails (dropping the frame), then a backed-off successful
// redial counting one reconnect.
func TestScriptedFailureCounters(t *testing.T) {
	ctr := &Counters{}
	s1, s2 := &fakeSender{}, &fakeSender{}
	var mu sync.Mutex
	script := []func() (Sender, error){
		func() (Sender, error) { return s1, nil },
		func() (Sender, error) { return nil, errors.New("refused") },
		func() (Sender, error) { return s2, nil },
	}
	dial := func() (Sender, error) {
		mu.Lock()
		next := script[0]
		script = script[1:]
		mu.Unlock()
		return next()
	}
	p := newPeer("x", testConfig(), ctr, dial)
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	// Frame A: dial #1 succeeds, write lands on s1.
	p.Enqueue(frame('A'))
	waitFor(t, func() bool { return s1.count() == 1 })

	// Frame B: s1's write fails, dial #2 is refused, B is dropped and the
	// peer enters backoff.
	s1.setFailNext()
	p.Enqueue(frame('B'))
	waitFor(t, func() bool { return ctr.DialFailures.Load() == 1 })
	if got := p.State(); got != StateBackoff {
		t.Errorf("state after refused dial = %v, want backoff", got)
	}

	// Frame C: after the backoff expires, dial #3 succeeds — one reconnect.
	p.Enqueue(frame('C'))
	waitFor(t, func() bool { return s2.count() == 1 })

	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"dials", ctr.Dials.Load(), 3},
		{"dial_failures", ctr.DialFailures.Load(), 1},
		{"drops", ctr.Drops.Load(), 1},
		{"reconnects", ctr.Reconnects.Load(), 1},
		{"bytes_out", ctr.BytesOut.Load(), 2},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if got := p.State(); got != StateUp {
		t.Errorf("final state = %v, want up", got)
	}
	if !s1.closed {
		t.Error("failed sender was not closed")
	}
}

// TestBackoffGrowsAndCaps pins the exponential schedule: min, 2·min,
// 4·min, ... capped at max.
func TestBackoffGrowsAndCaps(t *testing.T) {
	cfg := testConfig() // min 5ms, max 20ms
	ctr := &Counters{}
	dial := func() (Sender, error) { return nil, errors.New("refused") }
	p := newPeer("x", cfg, ctr, dial)
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 20 * time.Millisecond, // capped
	}
	for i, w := range want {
		p.Enqueue(frame(byte(i)))
		n := uint64(i + 1)
		waitFor(t, func() bool { return ctr.DialFailures.Load() == n })
		p.mu.Lock()
		got := p.backoff
		p.mu.Unlock()
		if got != w {
			t.Fatalf("backoff after failure %d = %v, want %v", i+1, got, w)
		}
	}
	if d := ctr.Drops.Load(); d != uint64(len(want)) {
		t.Errorf("drops = %d, want %d (one per failed dial)", d, len(want))
	}
}

// TestAdoptAndDiscard: a reply-only peer (nil dial) uses an adopted sender,
// and drops frames once it is discarded.
func TestAdoptAndDiscard(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", testConfig(), ctr, nil)
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	fs := &fakeSender{}
	if !p.Adopt(fs) {
		t.Fatal("adopt refused")
	}
	if got := p.State(); got != StateUp {
		t.Errorf("state after adopt = %v, want up", got)
	}
	other := &fakeSender{}
	if p.Adopt(other) {
		t.Error("second adopt accepted while a sender is live")
	}
	p.Enqueue(frame(1))
	waitFor(t, func() bool { return fs.count() == 1 })

	p.Discard(fs)
	if !fs.closed {
		t.Error("discarded sender not closed")
	}
	p.Enqueue(frame(2))
	waitFor(t, func() bool { return ctr.Drops.Load() == 1 })
	if fs.count() != 1 {
		t.Error("frame written to discarded sender")
	}
}

// TestCloseDrainsQueue: frames queued before Close are flushed within the
// drain deadline.
func TestCloseDrainsQueue(t *testing.T) {
	ctr := &Counters{}
	fs := &fakeSender{}
	p := newPeer("x", Config{QueueDepth: 16}.withDefaults(), ctr,
		func() (Sender, error) { return fs, nil })
	for b := byte(1); b <= 5; b++ {
		p.Enqueue(frame(b))
	}
	p.beginClose(time.Now().Add(time.Second))
	p.Wait()
	if fs.count() != 5 {
		t.Errorf("delivered %d frames, want 5", fs.count())
	}
	if d := ctr.Drops.Load(); d != 0 {
		t.Errorf("drops = %d, want 0", d)
	}
	if !fs.closed {
		t.Error("sender not closed on shutdown")
	}
}

// TestCloseDropsUndeliverable: when the peer is unreachable, Close gives up
// at the drain deadline and counts every queued frame as dropped.
func TestCloseDropsUndeliverable(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", testConfig(), ctr,
		func() (Sender, error) { return nil, errors.New("refused") })
	for b := byte(1); b <= 4; b++ {
		p.Enqueue(frame(b))
	}
	start := time.Now()
	p.beginClose(time.Now().Add(50 * time.Millisecond))
	p.Wait()
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("close took %v, want bounded by drain deadline", el)
	}
	if d := ctr.Drops.Load(); d != 4 {
		t.Errorf("drops = %d, want 4", d)
	}
}

// TestSetDialDropsCurrent: re-pointing a peer discards the live sender so
// nothing more is written to the stale destination.
func TestSetDialDropsCurrent(t *testing.T) {
	ctr := &Counters{}
	oldS, newS := &fakeSender{}, &fakeSender{}
	p := newPeer("x", testConfig(), ctr, func() (Sender, error) { return oldS, nil })
	defer func() { p.beginClose(time.Now()); p.Wait() }()

	p.Enqueue(frame(1))
	waitFor(t, func() bool { return oldS.count() == 1 })

	p.SetDial(func() (Sender, error) { return newS, nil }, true)
	if !oldS.closed {
		t.Error("stale sender not closed on re-point")
	}
	p.Enqueue(frame(2))
	waitFor(t, func() bool { return newS.count() == 1 })
	if oldS.count() != 1 {
		t.Error("frame written to stale sender after re-point")
	}
}

// TestGroupStats aggregates queue depth and peer states.
func TestGroupStats(t *testing.T) {
	g := NewGroup("test", Config{QueueDepth: 8, BackoffMin: time.Minute, BackoffMax: time.Minute})
	defer g.Close()

	up := g.Ensure("up", nil)
	up.Adopt(&fakeSender{})
	g.Ensure("connecting", nil)
	down := g.Ensure("down", func() (Sender, error) { return nil, errors.New("refused") })
	down.Enqueue(frame(1)) // forces a dial failure -> backoff
	waitFor(t, func() bool { return g.Stats().PeersBackoff == 1 })

	st := g.Stats()
	if st.PeersUp != 1 || st.PeersConnecting != 1 || st.PeersBackoff != 1 {
		t.Errorf("peer states = up:%d connecting:%d backoff:%d, want 1/1/1",
			st.PeersUp, st.PeersConnecting, st.PeersBackoff)
	}
	if st.Dials != 1 || st.DialFailures != 1 || st.Drops != 1 {
		t.Errorf("counters = %+v", st)
	}

	// Queue depth: enqueue to the backed-off peer; the frames sit waiting.
	down.Enqueue(frame(2))
	down.Enqueue(frame(3))
	if st := g.Stats(); st.QueueDepth != 2 {
		t.Errorf("queue depth = %d, want 2", st.QueueDepth)
	}
}

// TestStatsSinkPublishes: the periodic publisher delivers snapshots.
func TestStatsSinkPublishes(t *testing.T) {
	got := make(chan TransportStats, 4)
	g := NewGroup("test", BuildConfig(
		WithStatsInterval(5*time.Millisecond),
		WithStatsSink(func(st TransportStats) {
			select {
			case got <- st:
			default:
			}
		})))
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no stats published")
	}
	g.Close()
}

// TestEnqueueAfterCloseDrops: sends after Close are counted, not queued.
func TestEnqueueAfterCloseDrops(t *testing.T) {
	ctr := &Counters{}
	p := newPeer("x", testConfig(), ctr, nil)
	p.beginClose(time.Now())
	p.Wait()
	p.Enqueue(frame(1))
	if d := ctr.Drops.Load(); d != 1 {
		t.Errorf("drops = %d, want 1", d)
	}
}

// TestBuildConfigOptions: every functional option lands in the config.
func TestBuildConfigOptions(t *testing.T) {
	cfg := BuildConfig(
		WithQueueDepth(7),
		WithBackoff(time.Millisecond, time.Second),
		WithDialTimeout(123*time.Millisecond),
		WithWriteTimeout(time.Minute),
		WithDrainTimeout(time.Hour),
		WithMaxFrame(9999),
		WithStatsInterval(time.Second),
	)
	if cfg.QueueDepth != 7 || cfg.BackoffMin != time.Millisecond ||
		cfg.BackoffMax != time.Second || cfg.DialTimeout != 123*time.Millisecond ||
		cfg.WriteTimeout != time.Minute || cfg.DrainTimeout != time.Hour ||
		cfg.MaxFrame != 9999 || cfg.StatsInterval != time.Second {
		t.Errorf("options not applied: %+v", cfg)
	}
	def := BuildConfig()
	if def.QueueDepth <= 0 || def.MaxFrame != DefaultMaxFrame || def.Dialer == nil {
		t.Errorf("defaults missing: %+v", def)
	}
}
