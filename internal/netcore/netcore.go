// Package netcore is the shared production transport core under the live
// transports (internal/tcpnet, internal/udpnet). It owns everything the two
// transports used to duplicate or lack:
//
//   - per-peer bounded outbound queues drained by dedicated writer
//     goroutines, so a protocol-side Send never blocks, dials, or waits on a
//     slow peer's socket (overflow drops the oldest frame and counts it);
//   - automatic reconnect with exponential backoff plus jitter and a
//     per-peer health state machine (connecting / up / backoff);
//   - shared frame encoding/decoding with the frame-size bound enforced on
//     both directions;
//   - graceful close that drains queues up to a deadline;
//   - a TransportStats snapshot (sends, drops, dials, dial failures,
//     reconnects, bytes in/out, queue depth, peer health) in the same style
//     as core.HostStats/ManagerStats.
//
// The transports stay thin: they own their sockets (listeners, read loops,
// address books) and hand netcore a DialFunc per peer; netcore owns the
// outbound path.
package netcore

import (
	"log/slog"
	"net"
	"sync/atomic"
	"time"

	"wanac/internal/wire"
)

// Handler receives messages from the network. Both live transports dispatch
// inbound traffic through this interface (it has the same shape as the
// simulator's handler, so protocol nodes plug into either unchanged).
type Handler interface {
	HandleMessage(from wire.NodeID, msg wire.Message)
}

// DefaultMaxFrame bounds frame size in both directions (1 MiB) so a
// misbehaving peer cannot exhaust memory and a buggy caller cannot wedge a
// connection with an unbounded write.
const DefaultMaxFrame = 1 << 20

// DefaultMaxBatch bounds how many queued messages one writer flush
// coalesces. 64 keeps a flush's wire.Batch frame small relative to MaxFrame
// while amortizing the per-wakeup lock, deadline, and syscall across enough
// messages to matter under load.
const DefaultMaxBatch = 64

// Framing tells the peer writer how to build frames itself, which is what
// enables coalescing: messages enqueued un-encoded (Peer.EnqueueMessage)
// are batched into wire.Batch frames at flush time, encoded directly into
// the writer's reusable buffer. A transport sets Framing on its Config
// before NewGroup; without it only pre-encoded Enqueue frames can be sent.
type Framing struct {
	// From is the local node id stamped on every outbound frame.
	From wire.NodeID
	// Stream prefixes each frame with a big-endian u32 payload length
	// (tcpnet); false means raw datagram payloads (udpnet).
	Stream bool
	// Limit bounds one frame's payload. For datagram transports this is
	// min(MaxFrame, MTU).
	Limit int
}

// Config tunes a transport's outbound path. The zero value is usable:
// withDefaults fills every field a deployment does not set.
type Config struct {
	// QueueDepth bounds each peer's outbound queue. When the queue is full
	// the oldest frame is dropped (and counted) — under backpressure the
	// freshest protocol traffic is the most useful, since the protocol's own
	// retry machinery regenerates anything older.
	QueueDepth int
	// LaneDepth bounds each peer's high-priority outbound lane (revocations,
	// updates, admin, sync, heartbeats — see wire.LaneOf). It is sized
	// separately from QueueDepth so a bulk query flood can never evict
	// control traffic: each lane overflows only into itself. Zero defaults
	// to QueueDepth.
	LaneDepth int
	// DialTimeout bounds one connection attempt.
	DialTimeout time.Duration
	// BackoffMin and BackoffMax bound the exponential redial backoff. The
	// actual wait is jittered within [d/2, d] so a restarted manager is not
	// hit by every host at the same instant.
	BackoffMin, BackoffMax time.Duration
	// WriteTimeout bounds one frame write on a stream connection.
	WriteTimeout time.Duration
	// ReadIdleTimeout, when positive, closes stream connections that deliver
	// no frame for this long (the protocol's heartbeats and retries keep
	// healthy links chatty). Zero disables the idle check.
	ReadIdleTimeout time.Duration
	// DrainTimeout bounds how long Close keeps draining queued frames before
	// dropping the remainder.
	DrainTimeout time.Duration
	// MaxFrame bounds frame size in both directions.
	MaxFrame int
	// MaxBatch bounds how many queued messages one writer flush coalesces
	// (and therefore how many sub-messages one wire.Batch frame carries).
	MaxBatch int
	// Framing, when set by the transport, lets the writer goroutine encode
	// and coalesce messages itself; see the Framing type.
	Framing *Framing
	// StatsInterval, when positive, publishes a TransportStats snapshot to
	// StatsSink every interval (defaulting to the process log when no sink
	// is set).
	StatsInterval time.Duration
	// StatsSink receives periodic snapshots when StatsInterval is set.
	StatsSink func(TransportStats)
	// StateSink, when set, is invoked on every actual peer health
	// transition (connecting/up/backoff) — never on no-op calls — outside
	// any transport lock. The flight recorder subscribes here so transport
	// flaps appear on failure timelines. The callback must be fast and must
	// not call back into the transport.
	StateSink func(peer wire.NodeID, state State)
	// Dialer opens raw connections for stream transports. Tests inject
	// blocking or failing dialers here; nil uses net.DialTimeout.
	Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)
}

// withDefaults returns cfg with unset fields filled in.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.LaneDepth <= 0 {
		c.LaneDepth = c.QueueDepth
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 3 * time.Second
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = c.BackoffMin
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Dialer == nil {
		c.Dialer = net.DialTimeout
	}
	return c
}

// Option adjusts a Config. The facade (wanac.Listen) and the transports'
// ListenConfig constructors accept options so deployments tune the
// transport without reaching into internal packages.
type Option func(*Config)

// WithQueueDepth bounds each peer's outbound queue.
func WithQueueDepth(n int) Option { return func(c *Config) { c.QueueDepth = n } }

// WithLaneDepth bounds each peer's high-priority outbound lane separately
// from the bulk queue, so control traffic survives bulk floods.
func WithLaneDepth(n int) Option { return func(c *Config) { c.LaneDepth = n } }

// WithBackoff bounds the exponential redial backoff.
func WithBackoff(min, max time.Duration) Option {
	return func(c *Config) { c.BackoffMin, c.BackoffMax = min, max }
}

// WithDialTimeout bounds one connection attempt.
func WithDialTimeout(d time.Duration) Option { return func(c *Config) { c.DialTimeout = d } }

// WithWriteTimeout bounds one frame write on a stream connection.
func WithWriteTimeout(d time.Duration) Option { return func(c *Config) { c.WriteTimeout = d } }

// WithDrainTimeout bounds how long Close drains queued frames.
func WithDrainTimeout(d time.Duration) Option { return func(c *Config) { c.DrainTimeout = d } }

// WithMaxFrame bounds frame size in both directions.
func WithMaxFrame(n int) Option { return func(c *Config) { c.MaxFrame = n } }

// WithMaxBatch bounds how many queued messages one writer flush coalesces
// into a single wire write. 1 disables coalescing.
func WithMaxBatch(n int) Option { return func(c *Config) { c.MaxBatch = n } }

// WithStatsInterval publishes TransportStats snapshots every d.
func WithStatsInterval(d time.Duration) Option { return func(c *Config) { c.StatsInterval = d } }

// WithStatsSink directs periodic snapshots to fn instead of the process log.
func WithStatsSink(fn func(TransportStats)) Option { return func(c *Config) { c.StatsSink = fn } }

// WithStateSink invokes fn on every peer health transition.
func WithStateSink(fn func(peer wire.NodeID, state State)) Option {
	return func(c *Config) { c.StateSink = fn }
}

// BuildConfig applies opts to a default Config.
func BuildConfig(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c.withDefaults()
}

// State is a peer's connection health.
type State int32

// The health state machine: a peer starts Connecting, moves to Up when a
// connection is established (dialed or adopted from an inbound accept), and
// to Backoff after a failed dial until the jittered backoff expires.
const (
	StateConnecting State = iota
	StateUp
	StateBackoff
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateUp:
		return "up"
	case StateBackoff:
		return "backoff"
	default:
		return "unknown"
	}
}

// Counters are the transport's monotonic event counts, maintained with
// atomics so read loops, writer goroutines, and Stats snapshots never
// contend.
type Counters struct {
	// Sends counts Send calls (whether or not the frame was ultimately
	// delivered).
	Sends atomic.Uint64
	// Drops counts frames dropped anywhere on the outbound path: unknown
	// peer, encode failure, queue overflow, undeliverable after dial
	// failure, or discarded by Close's drain deadline.
	Drops atomic.Uint64
	// LaneEnqueued, LaneDelivered, and LaneDrops account every queued entry
	// per priority lane (indexed by wire.Lane). The writer maintains the
	// conservation invariant per lane:
	//
	//	LaneDelivered + LaneDrops == LaneEnqueued (once quiesced)
	//
	// LaneDrops sums to Drops minus unknown-peer drops, which are counted
	// before a lane is ever assigned.
	LaneEnqueued, LaneDelivered, LaneDrops [2]atomic.Uint64
	// Dials counts connection attempts.
	Dials atomic.Uint64
	// DialFailures counts connection attempts that failed.
	DialFailures atomic.Uint64
	// Reconnects counts successful dials that re-established a previously
	// up peer.
	Reconnects atomic.Uint64
	// BytesIn and BytesOut count frame bytes crossing the wire.
	BytesIn, BytesOut atomic.Uint64
	// BatchesOut counts coalesced writer flushes (each one wire write);
	// BatchFramesSum the total frames those flushes carried, so the mean
	// frames-per-flush is BatchFramesSum/BatchesOut.
	BatchesOut, BatchFramesSum atomic.Uint64
	// batchFrames are per-bucket counts of frames per flush (bounds
	// BatchFrameBounds, last slot is overflow), feeding the
	// netcore_batch_frames histogram.
	batchFrames [len(BatchFrameBounds) + 1]atomic.Uint64
}

// BatchFrameBounds are the upper bounds of the frames-per-flush histogram
// buckets exported as netcore_batch_frames.
var BatchFrameBounds = [8]float64{1, 2, 4, 8, 16, 32, 64, 128}

// observeBatch records one writer flush that put frames frames on the wire
// with a single write.
func (c *Counters) observeBatch(frames int) {
	c.BatchesOut.Add(1)
	c.BatchFramesSum.Add(uint64(frames))
	i := 0
	for i < len(BatchFrameBounds) && float64(frames) > BatchFrameBounds[i] {
		i++
	}
	c.batchFrames[i].Add(1)
}

// TransportStats is a point-in-time snapshot of a transport's activity,
// mirroring the core.HostStats/ManagerStats style.
type TransportStats struct {
	// Sends counts Send calls.
	Sends uint64 `json:"sends"`
	// Drops counts frames dropped on the outbound path (overflow, unknown
	// peer, dial failure, drain deadline).
	Drops uint64 `json:"drops"`
	// Dials counts connection attempts; DialFailures the failed ones.
	Dials        uint64 `json:"dials"`
	DialFailures uint64 `json:"dial_failures"`
	// Reconnects counts re-established connections to previously up peers.
	Reconnects uint64 `json:"reconnects"`
	// BytesIn and BytesOut count frame bytes received and written.
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
	// BatchesOut counts coalesced writer flushes (one wire write each);
	// BatchFramesSum the total frames those flushes carried.
	BatchesOut     uint64 `json:"batches_out"`
	BatchFramesSum uint64 `json:"batch_frames_sum"`
	// BatchFrames are cumulative per-bucket counts of frames per flush; the
	// bucket upper bounds are BatchFrameBounds plus a final overflow slot.
	BatchFrames []uint64 `json:"batch_frames"`
	// LaneEnqueued, LaneDelivered, and LaneDrops are per-priority-lane
	// accounting (index 0 = bulk, 1 = high; see wire.Lane). Once a peer
	// quiesces, delivered+drops == enqueued holds per lane.
	LaneEnqueued  [2]uint64 `json:"lane_enqueued"`
	LaneDelivered [2]uint64 `json:"lane_delivered"`
	LaneDrops     [2]uint64 `json:"lane_drops"`
	// QueueDepth is the current total of frames queued across peers.
	QueueDepth int `json:"queue_depth"`
	// LaneDepths is the current per-lane split of QueueDepth.
	LaneDepths [2]int `json:"lane_depths"`
	// PeersUp, PeersConnecting, and PeersBackoff count peers by health
	// state.
	PeersUp         int `json:"peers_up"`
	PeersConnecting int `json:"peers_connecting"`
	PeersBackoff    int `json:"peers_backoff"`
	// Peers maps each peer id to its current health state name
	// ("connecting", "up", "backoff"), so operators can see which peer is
	// flapping, not just how many. Nil when the transport has no peers.
	Peers map[string]string `json:"peers,omitempty"`
}

// snapshot loads the counter half of a TransportStats.
func (c *Counters) snapshot() TransportStats {
	frames := make([]uint64, len(c.batchFrames))
	for i := range c.batchFrames {
		frames[i] = c.batchFrames[i].Load()
	}
	var laneEnq, laneDel, laneDrop [2]uint64
	for ln := range laneEnq {
		laneEnq[ln] = c.LaneEnqueued[ln].Load()
		laneDel[ln] = c.LaneDelivered[ln].Load()
		laneDrop[ln] = c.LaneDrops[ln].Load()
	}
	return TransportStats{
		Sends:          c.Sends.Load(),
		Drops:          c.Drops.Load(),
		LaneEnqueued:   laneEnq,
		LaneDelivered:  laneDel,
		LaneDrops:      laneDrop,
		Dials:          c.Dials.Load(),
		DialFailures:   c.DialFailures.Load(),
		Reconnects:     c.Reconnects.Load(),
		BytesIn:        c.BytesIn.Load(),
		BytesOut:       c.BytesOut.Load(),
		BatchesOut:     c.BatchesOut.Load(),
		BatchFramesSum: c.BatchFramesSum.Load(),
		BatchFrames:    frames,
	}
}

// logSink is the default StatsSink: one structured line on the process
// logger (slog), the same place acnode's tracer writes, so transport stats
// are machine-joinable with the rest of a node's log stream.
func logSink(name string) func(TransportStats) {
	return func(st TransportStats) {
		slog.Info("transport stats",
			"transport", name,
			"sends", st.Sends,
			"drops", st.Drops,
			"dials", st.Dials,
			"dial_failures", st.DialFailures,
			"reconnects", st.Reconnects,
			"bytes_in", st.BytesIn,
			"bytes_out", st.BytesOut,
			"queued", st.QueueDepth,
			"peers_up", st.PeersUp,
			"peers_connecting", st.PeersConnecting,
			"peers_backoff", st.PeersBackoff)
	}
}
