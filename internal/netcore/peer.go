package netcore

import (
	"math/rand/v2"
	"sync"
	"time"

	"wanac/internal/wire"
)

// Sender is one transport-specific way to put a frame on the wire: a TCP
// connection with a write deadline, or a UDP socket bound to a peer
// address. WriteFrame may block (bounded by the transport's deadlines); it
// is only ever called from the peer's writer goroutine.
type Sender interface {
	WriteFrame(frame []byte) error
	Close() error
}

// DialFunc establishes a Sender to a peer. It is called only from the
// peer's writer goroutine, never under a lock, so one peer's slow dial
// cannot delay any other peer's traffic. A nil DialFunc means the peer is
// reachable only through adopted inbound connections.
type DialFunc func() (Sender, error)

// Peer owns one remote node's outbound path: a bounded drop-oldest frame
// queue, a dedicated writer goroutine that drains it, and the reconnect
// state machine. Enqueue never blocks; all dialing, backoff waiting, and
// socket writing happens on the writer goroutine.
type Peer struct {
	id  wire.NodeID
	cfg Config
	ctr *Counters

	// wake nudges the writer: new frame, adopted sender, redirect, close.
	wake chan struct{}
	// done closes when the writer goroutine has exited.
	done chan struct{}

	mu    sync.Mutex
	q     [][]byte // outbound frames; qhead indexes the oldest
	qhead int
	dial  DialFunc
	cur   Sender
	state State
	// everUp marks that the peer had a connection at least once, so the
	// next successful dial counts as a reconnect.
	everUp bool
	// backoff is the current (un-jittered) redial delay; backoffUntil gates
	// the next dial attempt.
	backoff      time.Duration
	backoffUntil time.Time
	closed       bool
	drainBy      time.Time
}

// newPeer creates a peer and starts its writer goroutine. cfg must already
// have defaults applied.
func newPeer(id wire.NodeID, cfg Config, ctr *Counters, dial DialFunc) *Peer {
	p := &Peer{
		id:    id,
		cfg:   cfg,
		ctr:   ctr,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		dial:  dial,
		state: StateConnecting,
	}
	go p.run()
	return p
}

// ID returns the peer's node id.
func (p *Peer) ID() wire.NodeID { return p.id }

// notify reports a health transition to the configured sink. Callers pass
// the state observed before and after a mutation and call it after
// releasing p.mu, so the sink can never deadlock against the transport.
func (p *Peer) notify(old, now State) {
	if old != now && p.cfg.StateSink != nil {
		p.cfg.StateSink(p.id, now)
	}
}

// Enqueue queues a frame for the writer goroutine, dropping the oldest
// queued frame when the queue is full. It never blocks.
func (p *Peer) Enqueue(frame []byte) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.ctr.Drops.Add(1)
		return
	}
	if len(p.q)-p.qhead >= p.cfg.QueueDepth {
		p.q[p.qhead] = nil
		p.qhead++
		p.ctr.Drops.Add(1)
	}
	// Reclaim the drained prefix once it dominates the backing array.
	if p.qhead > 32 && p.qhead*2 >= len(p.q) {
		n := copy(p.q, p.q[p.qhead:])
		clear(p.q[n:])
		p.q = p.q[:n]
		p.qhead = 0
	}
	p.q = append(p.q, frame)
	p.mu.Unlock()
	p.nudge()
}

// Adopt hands the peer an inbound connection to use for replies. It is
// ignored when the peer is closed or already has a live sender (the caller
// keeps ownership in that case).
func (p *Peer) Adopt(s Sender) bool {
	p.mu.Lock()
	if p.closed || p.cur != nil {
		p.mu.Unlock()
		return false
	}
	old := p.state
	p.cur = s
	p.state = StateUp
	p.everUp = true
	p.backoff = 0
	p.backoffUntil = time.Time{}
	p.mu.Unlock()
	p.notify(old, StateUp)
	p.nudge()
	return true
}

// Discard drops s if it is the peer's current sender (a read loop saw the
// connection die, or a write failed) and closes it. The writer redials on
// the next frame.
func (p *Peer) Discard(s Sender) {
	p.mu.Lock()
	old := p.state
	if p.cur == s {
		p.cur = nil
		if p.state == StateUp {
			p.state = StateConnecting
		}
	}
	now := p.state
	p.mu.Unlock()
	p.notify(old, now)
	s.Close()
	p.nudge()
}

// SetDial installs or replaces the peer's dial function. When dropCurrent
// is set (the peer's address changed) any live connection is discarded so
// no further frame is written to the stale destination, and the backoff
// clock restarts for the new address.
func (p *Peer) SetDial(dial DialFunc, dropCurrent bool) {
	p.mu.Lock()
	old := p.state
	p.dial = dial
	var stale Sender
	if dropCurrent {
		stale = p.cur
		p.cur = nil
		if p.state == StateUp {
			p.state = StateConnecting
		}
	}
	p.backoff = 0
	p.backoffUntil = time.Time{}
	if p.state == StateBackoff {
		p.state = StateConnecting
	}
	now := p.state
	p.mu.Unlock()
	p.notify(old, now)
	if stale != nil {
		stale.Close()
	}
	p.nudge()
}

// ClearBackoff lets the writer dial immediately (a datagram transport
// learned a fresh address for the peer).
func (p *Peer) ClearBackoff() {
	p.mu.Lock()
	old := p.state
	p.backoff = 0
	p.backoffUntil = time.Time{}
	if p.state == StateBackoff {
		p.state = StateConnecting
	}
	now := p.state
	p.mu.Unlock()
	p.notify(old, now)
	p.nudge()
}

// beginClose stops accepting frames and lets the writer drain what is
// queued until deadline. Wait blocks until the writer has exited.
func (p *Peer) beginClose(deadline time.Time) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.drainBy = deadline
	}
	p.mu.Unlock()
	p.nudge()
}

// Wait blocks until the writer goroutine has exited.
func (p *Peer) Wait() { <-p.done }

// status reports the queue depth and health state for stats snapshots.
func (p *Peer) status() (depth int, state State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q) - p.qhead, p.state
}

// State returns the peer's current health state.
func (p *Peer) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// nudge wakes the writer goroutine without blocking.
func (p *Peer) nudge() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// run is the writer goroutine: pop a frame (respecting backoff and drain
// deadlines), deliver it (dialing as needed), repeat until closed.
func (p *Peer) run() {
	defer close(p.done)
	for {
		frame, ok := p.next()
		if !ok {
			break
		}
		p.deliver(frame)
	}
	p.mu.Lock()
	dropped := len(p.q) - p.qhead
	p.q, p.qhead = nil, 0
	cur := p.cur
	p.cur = nil
	p.mu.Unlock()
	if dropped > 0 {
		p.ctr.Drops.Add(uint64(dropped))
	}
	if cur != nil {
		cur.Close()
	}
}

// next blocks until a frame is ready to deliver. While the peer is in
// backoff with no live sender, queued frames wait (accumulating sends drop
// oldest) until the backoff expires. Returns false when the peer is closed
// and the queue is drained or the drain deadline passed.
func (p *Peer) next() ([]byte, bool) {
	for {
		p.mu.Lock()
		now := time.Now()
		empty := len(p.q) == p.qhead
		if p.closed && (empty || now.After(p.drainBy)) {
			p.mu.Unlock()
			return nil, false
		}
		var wait time.Duration = -1
		if !empty {
			if p.cur != nil || p.state != StateBackoff || !now.Before(p.backoffUntil) {
				frame := p.q[p.qhead]
				p.q[p.qhead] = nil
				p.qhead++
				p.mu.Unlock()
				return frame, true
			}
			wait = p.backoffUntil.Sub(now)
		}
		if p.closed {
			if d := p.drainBy.Sub(now); wait < 0 || d < wait {
				wait = d
			}
		}
		p.mu.Unlock()
		if wait < 0 {
			<-p.wake
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-p.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// deliver writes one frame, establishing a connection if needed. A write
// failure discards the connection and retries once on a fresh one; if no
// connection can be established the frame is dropped (unreliable-network
// semantics — the protocol's retries provide liveness).
func (p *Peer) deliver(frame []byte) {
	for attempt := 0; attempt < 2; attempt++ {
		s := p.sender()
		if s == nil {
			p.ctr.Drops.Add(1)
			return
		}
		if err := s.WriteFrame(frame); err != nil {
			p.Discard(s)
			continue
		}
		p.ctr.BytesOut.Add(uint64(len(frame)))
		return
	}
	p.ctr.Drops.Add(1)
}

// sender returns the current sender, dialing one if necessary. On dial
// failure it arms the jittered exponential backoff and returns nil.
func (p *Peer) sender() Sender {
	p.mu.Lock()
	if s := p.cur; s != nil {
		p.mu.Unlock()
		return s
	}
	dial := p.dial
	if dial == nil {
		p.mu.Unlock()
		return nil
	}
	old := p.state
	p.state = StateConnecting
	p.mu.Unlock()
	p.notify(old, StateConnecting)

	p.ctr.Dials.Add(1)
	s, err := dial()

	p.mu.Lock()
	if err != nil {
		p.ctr.DialFailures.Add(1)
		if p.backoff == 0 {
			p.backoff = p.cfg.BackoffMin
		} else if p.backoff *= 2; p.backoff > p.cfg.BackoffMax {
			p.backoff = p.cfg.BackoffMax
		}
		// Jitter within [d/2, d] so a fleet of hosts does not redial a
		// restarted manager in lockstep.
		d := p.backoff/2 + rand.N(p.backoff/2+1)
		p.backoffUntil = time.Now().Add(d)
		p.state = StateBackoff
		p.mu.Unlock()
		p.notify(StateConnecting, StateBackoff)
		return nil
	}
	if p.cur != nil {
		// An inbound connection was adopted while we dialed; prefer it.
		existing := p.cur
		p.mu.Unlock()
		s.Close()
		return existing
	}
	if p.closed && time.Now().After(p.drainBy) {
		p.mu.Unlock()
		s.Close()
		return nil
	}
	p.cur = s
	p.state = StateUp
	if p.everUp {
		p.ctr.Reconnects.Add(1)
	}
	p.everUp = true
	p.backoff = 0
	p.backoffUntil = time.Time{}
	p.mu.Unlock()
	p.notify(StateConnecting, StateUp)
	return s
}
