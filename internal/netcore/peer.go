package netcore

import (
	"encoding/binary"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"wanac/internal/wire"
)

// Sender is one transport-specific way to put frames on the wire: a TCP
// connection with a write deadline, or a UDP socket bound to a peer
// address. Writes may block (bounded by the transport's deadlines); both
// methods are only ever called from the peer's writer goroutine.
//
// WriteBatch writes several frames with as few syscalls as the transport
// allows (TCP: one writev under one deadline; UDP: payloads packed into
// shared datagrams) and returns how many frames were written in full. It
// may mutate the passed slice and its backing array — callers rebuild it
// per attempt. On error, frames[:n] are on the wire and frames[n:] are not
// (a trailing partially-written frame counts as not written; the failed
// connection is discarded, so the partial bytes die with it).
type Sender interface {
	WriteFrame(frame []byte) error
	WriteBatch(frames net.Buffers) (int, error)
	Close() error
}

// DialFunc establishes a Sender to a peer. It is called only from the
// peer's writer goroutine, never under a lock, so one peer's slow dial
// cannot delay any other peer's traffic. A nil DialFunc means the peer is
// reachable only through adopted inbound connections.
type DialFunc func() (Sender, error)

// queued is one outbound queue entry: either a pre-encoded frame (legacy
// Enqueue path) or an un-encoded message the writer encodes — and coalesces
// with its queue neighbors — at flush time (EnqueueMessage path). lane is
// the priority class the entry was queued under, kept on the entry so the
// drained batch (which interleaves lanes, high first) can still account
// drops and deliveries to the right lane.
type queued struct {
	frame []byte
	msg   wire.Message
	lane  wire.Lane
}

// piece is one wire frame produced by a flush: either a pre-encoded frame
// or an (off, n) range of the writer's encode buffer (offsets, not
// subslices, because the buffer may be reallocated by a later frame in the
// same flush). msgs is how many protocol messages the piece carries per
// lane, so a dropped piece counts every coalesced message exactly once in
// its own lane.
type piece struct {
	frame  []byte
	off, n int
	msgs   [2]int // indexed by wire.Lane
}

// total returns the piece's message count across both lanes.
func (pc piece) total() int { return pc.msgs[wire.LaneBulk] + pc.msgs[wire.LaneHigh] }

// laneQueue is one priority class's bounded drop-oldest queue; qhead indexes
// the oldest live entry (the prefix before it has been drained or dropped).
type laneQueue struct {
	q     []queued
	qhead int
}

// depth returns the number of live entries.
func (l *laneQueue) depth() int { return len(l.q) - l.qhead }

// Peer owns one remote node's outbound path: a bounded drop-oldest frame
// queue, a dedicated writer goroutine that drains it, and the reconnect
// state machine. Enqueue never blocks; all encoding, dialing, backoff
// waiting, and socket writing happens on the writer goroutine.
type Peer struct {
	id  wire.NodeID
	cfg Config
	ctr *Counters

	// wake nudges the writer: new frame, adopted sender, redirect, close.
	wake chan struct{}
	// done closes when the writer goroutine has exited.
	done chan struct{}

	// Writer-goroutine-owned scratch, reused across flushes so the steady
	// state allocates nothing: the drained batch, the shared encode buffer,
	// the per-flush frame list, the net.Buffers rebuilt per write attempt,
	// the current coalescing run, and the pre-built uvarint(len(id)) ++ id
	// prefix every frame starts with.
	batch    []queued
	fbuf     []byte
	pieces   []piece
	bufs     net.Buffers
	mrun     []wire.Message
	idPrefix []byte

	mu sync.Mutex
	// lanes are the per-class outbound queues, indexed by wire.Lane. The
	// high lane (revocations, updates, admin, sync, heartbeats) is drained
	// before any bulk traffic and bounded separately (cfg.LaneDepth), so a
	// flood of checks can never starve the revocation machinery.
	lanes [2]laneQueue
	dial  DialFunc
	cur   Sender
	state State
	// everUp marks that the peer had a connection at least once, so the
	// next successful dial counts as a reconnect.
	everUp bool
	// backoff is the current (un-jittered) redial delay; backoffUntil gates
	// the next dial attempt.
	backoff      time.Duration
	backoffUntil time.Time
	closed       bool
	drainBy      time.Time
}

// newPeer creates a peer and starts its writer goroutine. cfg must already
// have defaults applied.
func newPeer(id wire.NodeID, cfg Config, ctr *Counters, dial DialFunc) *Peer {
	p := &Peer{
		id:    id,
		cfg:   cfg,
		ctr:   ctr,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		dial:  dial,
		state: StateConnecting,
	}
	if f := cfg.Framing; f != nil {
		p.idPrefix = binary.AppendUvarint(nil, uint64(len(f.From)))
		p.idPrefix = append(p.idPrefix, f.From...)
	}
	go p.run()
	return p
}

// ID returns the peer's node id.
func (p *Peer) ID() wire.NodeID { return p.id }

// notify reports a health transition to the configured sink. Callers pass
// the state observed before and after a mutation and call it after
// releasing p.mu, so the sink can never deadlock against the transport.
func (p *Peer) notify(old, now State) {
	if old != now && p.cfg.StateSink != nil {
		p.cfg.StateSink(p.id, now)
	}
}

// Enqueue queues a pre-encoded frame for the writer goroutine, dropping the
// oldest queued entry in the bulk lane when it is full. It never blocks.
// Pre-encoded frames cannot be classified without decoding, so they ride
// the bulk lane; lane-aware callers use EnqueueMessage.
func (p *Peer) Enqueue(frame []byte) { p.enqueue(queued{frame: frame, lane: wire.LaneBulk}) }

// EnqueueMessage queues an un-encoded message in its priority lane
// (wire.LaneOf). The writer goroutine encodes it at flush time, coalescing
// it with other messages drained in the same flush into a single wire.Batch
// frame — so the encode cost, the frame header, and the write syscall are
// all off the caller's goroutine and amortized across the batch. Requires
// cfg.Framing.
func (p *Peer) EnqueueMessage(msg wire.Message) {
	p.enqueue(queued{msg: msg, lane: wire.LaneOf(msg)})
}

// dropLane counts n messages dropped from one lane, keeping the per-lane
// conservation invariant (delivered + dropped == enqueued) and the
// aggregate Drops counter in lockstep.
func (p *Peer) dropLane(lane wire.Lane, n uint64) {
	if n == 0 {
		return
	}
	p.ctr.LaneDrops[lane].Add(n)
	p.ctr.Drops.Add(n)
}

func (p *Peer) enqueue(ent queued) {
	lane := ent.lane
	p.ctr.LaneEnqueued[lane].Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.dropLane(lane, 1)
		return
	}
	lq := &p.lanes[lane]
	limit := p.cfg.QueueDepth
	if lane == wire.LaneHigh {
		limit = p.cfg.LaneDepth
	}
	if lq.depth() >= limit {
		lq.q[lq.qhead] = queued{}
		lq.qhead++
		p.dropLane(lane, 1)
	}
	// Reclaim the drained prefix once it dominates the backing array.
	if lq.qhead > 32 && lq.qhead*2 >= len(lq.q) {
		n := copy(lq.q, lq.q[lq.qhead:])
		clear(lq.q[n:])
		lq.q = lq.q[:n]
		lq.qhead = 0
	}
	lq.q = append(lq.q, ent)
	p.mu.Unlock()
	p.nudge()
}

// Adopt hands the peer an inbound connection to use for replies. It is
// ignored when the peer is closed or already has a live sender (the caller
// keeps ownership in that case).
func (p *Peer) Adopt(s Sender) bool {
	p.mu.Lock()
	if p.closed || p.cur != nil {
		p.mu.Unlock()
		return false
	}
	old := p.state
	p.cur = s
	p.state = StateUp
	p.everUp = true
	p.backoff = 0
	p.backoffUntil = time.Time{}
	p.mu.Unlock()
	p.notify(old, StateUp)
	p.nudge()
	return true
}

// Discard drops s if it is the peer's current sender (a read loop saw the
// connection die, or a write failed) and closes it. The writer redials on
// the next frame.
func (p *Peer) Discard(s Sender) {
	p.mu.Lock()
	old := p.state
	if p.cur == s {
		p.cur = nil
		if p.state == StateUp {
			p.state = StateConnecting
		}
	}
	now := p.state
	p.mu.Unlock()
	p.notify(old, now)
	s.Close()
	p.nudge()
}

// SetDial installs or replaces the peer's dial function. When dropCurrent
// is set (the peer's address changed) any live connection is discarded so
// no further frame is written to the stale destination, and the backoff
// clock restarts for the new address.
func (p *Peer) SetDial(dial DialFunc, dropCurrent bool) {
	p.mu.Lock()
	old := p.state
	p.dial = dial
	var stale Sender
	if dropCurrent {
		stale = p.cur
		p.cur = nil
		if p.state == StateUp {
			p.state = StateConnecting
		}
	}
	p.backoff = 0
	p.backoffUntil = time.Time{}
	if p.state == StateBackoff {
		p.state = StateConnecting
	}
	now := p.state
	p.mu.Unlock()
	p.notify(old, now)
	if stale != nil {
		stale.Close()
	}
	p.nudge()
}

// ClearBackoff lets the writer dial immediately (a datagram transport
// learned a fresh address for the peer).
func (p *Peer) ClearBackoff() {
	p.mu.Lock()
	old := p.state
	p.backoff = 0
	p.backoffUntil = time.Time{}
	if p.state == StateBackoff {
		p.state = StateConnecting
	}
	now := p.state
	p.mu.Unlock()
	p.notify(old, now)
	p.nudge()
}

// beginClose stops accepting frames and lets the writer drain what is
// queued until deadline. Wait blocks until the writer has exited.
func (p *Peer) beginClose(deadline time.Time) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.drainBy = deadline
	}
	p.mu.Unlock()
	p.nudge()
}

// Wait blocks until the writer goroutine has exited.
func (p *Peer) Wait() { <-p.done }

// status reports the per-lane queue depths and health state for stats
// snapshots.
func (p *Peer) status() (depths [2]int, state State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for ln := range p.lanes {
		depths[ln] = p.lanes[ln].depth()
	}
	return depths, p.state
}

// State returns the peer's current health state.
func (p *Peer) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// nudge wakes the writer goroutine without blocking.
func (p *Peer) nudge() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// run is the writer goroutine: drain every ready entry (respecting backoff
// and drain deadlines), flush them as one coalesced write (dialing as
// needed), repeat until closed.
func (p *Peer) run() {
	defer close(p.done)
	for {
		batch, ok := p.nextBatch()
		if !ok {
			break
		}
		p.flush(batch)
	}
	p.mu.Lock()
	var dropped [2]int
	for ln := range p.lanes {
		dropped[ln] = p.lanes[ln].depth()
		p.lanes[ln] = laneQueue{}
	}
	cur := p.cur
	p.cur = nil
	p.mu.Unlock()
	for ln, d := range dropped {
		p.dropLane(wire.Lane(ln), uint64(d))
	}
	if cur != nil {
		cur.Close()
	}
}

// nextBatch blocks until at least one entry is ready, then drains up to
// cfg.MaxBatch entries into the writer-owned batch slice under one lock
// acquisition — high lane first, so revocation/update traffic coalesces at
// the front of the flush and is written before any bulk entry. The drain is
// opportunistic — whatever is queued right now, never waiting for more — so
// batching adds no latency: an idle peer still sends a lone message
// immediately, and only under load (queue occupancy) do flushes grow. While
// the peer is in backoff with no live sender, queued entries wait
// (accumulating sends drop oldest per lane) until the backoff expires.
// Returns false when the peer is closed and the queues are drained or the
// drain deadline passed.
func (p *Peer) nextBatch() ([]queued, bool) {
	for {
		p.mu.Lock()
		now := time.Now()
		empty := p.lanes[wire.LaneBulk].depth() == 0 && p.lanes[wire.LaneHigh].depth() == 0
		if p.closed && (empty || now.After(p.drainBy)) {
			p.mu.Unlock()
			return nil, false
		}
		var wait time.Duration = -1
		if !empty {
			if p.cur != nil || p.state != StateBackoff || !now.Before(p.backoffUntil) {
				batch := p.batch[:0]
				room := p.cfg.MaxBatch
				for _, lane := range [2]wire.Lane{wire.LaneHigh, wire.LaneBulk} {
					lq := &p.lanes[lane]
					n := lq.depth()
					if n > room {
						n = room
					}
					if n == 0 {
						continue
					}
					batch = append(batch, lq.q[lq.qhead:lq.qhead+n]...)
					clear(lq.q[lq.qhead : lq.qhead+n])
					lq.qhead += n
					if lq.qhead == len(lq.q) {
						// Full drain: rewind so the array is reused from the
						// start instead of growing rightward forever.
						lq.q = lq.q[:0]
						lq.qhead = 0
					}
					room -= n
					if room == 0 {
						break
					}
				}
				p.batch = batch
				p.mu.Unlock()
				return p.batch, true
			}
			wait = p.backoffUntil.Sub(now)
		}
		if p.closed {
			if d := p.drainBy.Sub(now); wait < 0 || d < wait {
				wait = d
			}
		}
		p.mu.Unlock()
		if wait < 0 {
			<-p.wake
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-p.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// flush encodes the drained batch into frames and writes them all with one
// Sender call, establishing a connection if needed. A write failure
// discards the connection and retries the unwritten remainder once on a
// fresh one; what still cannot be delivered is dropped, counting each
// coalesced message exactly once (unreliable-network semantics — the
// protocol's retries provide liveness). Frames the failed attempt did
// write are never re-sent, so no frame is delivered twice on one
// connection.
func (p *Peer) flush(batch []queued) {
	pieces := p.encodeBatch(batch)
	if len(pieces) == 0 {
		return
	}
	for attempt := 0; attempt < 2; attempt++ {
		s := p.sender()
		if s == nil {
			break
		}
		var written int
		var err error
		if len(pieces) == 1 {
			if err = s.WriteFrame(p.pieceBytes(pieces[0])); err == nil {
				written = 1
			}
		} else {
			written, err = s.WriteBatch(p.buffers(pieces))
		}
		if written > 0 {
			var bytes uint64
			var delivered [2]uint64
			for _, pc := range pieces[:written] {
				bytes += uint64(pc.n)
				delivered[wire.LaneBulk] += uint64(pc.msgs[wire.LaneBulk])
				delivered[wire.LaneHigh] += uint64(pc.msgs[wire.LaneHigh])
			}
			p.ctr.BytesOut.Add(bytes)
			for ln, n := range delivered {
				if n > 0 {
					p.ctr.LaneDelivered[ln].Add(n)
				}
			}
			p.ctr.observeBatch(written)
			pieces = pieces[written:]
		}
		if err == nil {
			return
		}
		p.Discard(s)
		if len(pieces) == 0 {
			return
		}
	}
	var msgs [2]uint64
	for _, pc := range pieces {
		msgs[wire.LaneBulk] += uint64(pc.msgs[wire.LaneBulk])
		msgs[wire.LaneHigh] += uint64(pc.msgs[wire.LaneHigh])
	}
	for ln, n := range msgs {
		p.dropLane(wire.Lane(ln), n)
	}
}

// encodeBatch turns the drained entries into wire frames. Pre-encoded
// frames pass through untouched. Runs of messages are partitioned by exact
// wire.Size precomputation into groups that fit cfg.Framing.Limit, then
// each group is encoded zero-copy into the writer's reusable buffer — one
// message becomes a plain frame, two or more become a single wire.Batch
// frame. Messages that cannot be sized or fit are dropped and counted here.
func (p *Peer) encodeBatch(batch []queued) []piece {
	pieces := p.pieces[:0]
	fbuf := p.fbuf[:0]
	f := p.cfg.Framing
	i := 0
	for i < len(batch) {
		if batch[i].frame != nil {
			fr := batch[i].frame
			var msgs [2]int
			msgs[batch[i].lane] = 1
			pieces = append(pieces, piece{frame: fr, n: len(fr), msgs: msgs})
			i++
			continue
		}
		if f == nil {
			// Message entries need framing metadata the transport did not
			// provide; drop defensively (transports always set Framing).
			p.dropLane(batch[i].lane, 1)
			i++
			continue
		}
		// Collect the longest run of consecutive messages that fits one
		// frame. A message that is already a wire.Batch travels alone — the
		// codec (correctly) refuses nested batches. Runs may span the
		// high/bulk boundary: priority was already applied by the drain
		// order, so coalescing across it only saves a frame header.
		run := p.runScratch()
		var runLanes [2]int
		sum := 0
		for i < len(batch) && batch[i].frame == nil {
			m := batch[i].msg
			if _, isBatch := m.(wire.Batch); isBatch && len(run) > 0 {
				break
			}
			sz, err := wire.Size(m)
			if err != nil {
				p.dropLane(batch[i].lane, 1)
				i++
				continue
			}
			if len(p.idPrefix)+sz > f.Limit {
				p.dropLane(batch[i].lane, 1)
				i++
				continue
			}
			if n := len(run) + 1; n >= 2 {
				if len(p.idPrefix)+1+uvarintLen(uint64(n))+sum+sz > f.Limit {
					break
				}
			}
			run = append(run, m)
			runLanes[batch[i].lane]++
			sum += sz
			i++
			if _, isBatch := m.(wire.Batch); isBatch {
				break
			}
		}
		p.mrun = run
		if len(run) == 0 {
			continue
		}
		start := len(fbuf)
		if f.Stream {
			fbuf = append(fbuf, 0, 0, 0, 0)
		}
		pstart := len(fbuf)
		fbuf = append(fbuf, p.idPrefix...)
		var err error
		if len(run) == 1 {
			fbuf, err = wire.AppendMarshal(fbuf, run[0])
		} else {
			fbuf, err = wire.AppendBatch(fbuf, run)
		}
		if err != nil {
			for ln, n := range runLanes {
				p.dropLane(wire.Lane(ln), uint64(n))
			}
			fbuf = fbuf[:start]
			continue
		}
		if f.Stream {
			binary.BigEndian.PutUint32(fbuf[start:start+4], uint32(len(fbuf)-pstart))
		}
		pieces = append(pieces, piece{off: start, n: len(fbuf) - start, msgs: runLanes})
	}
	p.fbuf = fbuf
	p.pieces = pieces
	return pieces
}

// runScratch returns the reusable coalescing-run slice, emptied.
func (p *Peer) runScratch() []wire.Message {
	clear(p.mrun)
	return p.mrun[:0]
}

// pieceBytes materializes a piece's frame bytes. Valid only until the next
// encodeBatch call reuses the buffer.
func (p *Peer) pieceBytes(pc piece) []byte {
	if pc.frame != nil {
		return pc.frame
	}
	return p.fbuf[pc.off : pc.off+pc.n]
}

// buffers rebuilds the net.Buffers for a write attempt. Rebuilt fresh each
// time because Sender.WriteBatch consumes and mutates the slice it is
// given.
func (p *Peer) buffers(pieces []piece) net.Buffers {
	bufs := p.bufs[:0]
	for _, pc := range pieces {
		bufs = append(bufs, p.pieceBytes(pc))
	}
	p.bufs = bufs
	return bufs
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// sender returns the current sender, dialing one if necessary. On dial
// failure it arms the jittered exponential backoff and returns nil.
func (p *Peer) sender() Sender {
	p.mu.Lock()
	if s := p.cur; s != nil {
		p.mu.Unlock()
		return s
	}
	dial := p.dial
	if dial == nil {
		p.mu.Unlock()
		return nil
	}
	old := p.state
	p.state = StateConnecting
	p.mu.Unlock()
	p.notify(old, StateConnecting)

	p.ctr.Dials.Add(1)
	s, err := dial()

	p.mu.Lock()
	if err != nil {
		p.ctr.DialFailures.Add(1)
		if p.backoff == 0 {
			p.backoff = p.cfg.BackoffMin
		} else if p.backoff *= 2; p.backoff > p.cfg.BackoffMax {
			p.backoff = p.cfg.BackoffMax
		}
		// Jitter within [d/2, d] so a fleet of hosts does not redial a
		// restarted manager in lockstep.
		d := p.backoff/2 + rand.N(p.backoff/2+1)
		p.backoffUntil = time.Now().Add(d)
		p.state = StateBackoff
		p.mu.Unlock()
		p.notify(StateConnecting, StateBackoff)
		return nil
	}
	if p.cur != nil {
		// An inbound connection was adopted while we dialed; prefer it.
		existing := p.cur
		p.mu.Unlock()
		s.Close()
		return existing
	}
	if p.closed && time.Now().After(p.drainBy) {
		p.mu.Unlock()
		s.Close()
		return nil
	}
	p.cur = s
	p.state = StateUp
	if p.everUp {
		p.ctr.Reconnects.Add(1)
	}
	p.everUp = true
	p.backoff = 0
	p.backoffUntil = time.Time{}
	p.mu.Unlock()
	p.notify(StateConnecting, StateUp)
	return s
}
