package tcpnet

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"wanac/internal/core"
	"wanac/internal/netcore"
	"wanac/internal/wire"
)

type collector struct {
	mu  sync.Mutex
	got []wire.Envelope
}

func (c *collector) HandleMessage(from wire.NodeID, msg wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, wire.Envelope{From: from, Msg: msg})
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) last() wire.Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[len(c.got)-1]
}

// fastConfig keeps retry/drain waits short so tests close quickly.
func fastConfig() netcore.Config {
	return netcore.BuildConfig(
		netcore.WithBackoff(10*time.Millisecond, 100*time.Millisecond),
		netcore.WithDialTimeout(500*time.Millisecond),
		netcore.WithDrainTimeout(100*time.Millisecond),
	)
}

func listen(t *testing.T, id wire.NodeID) *Node {
	t.Helper()
	n, err := ListenConfig(id, "127.0.0.1:0", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func addPeer(t *testing.T, n *Node, id wire.NodeID, addr string) {
	t.Helper()
	if err := n.AddPeer(id, addr); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSendReceive(t *testing.T) {
	a := listen(t, "a")
	b := listen(t, "b")
	rec := &collector{}
	b.SetHandler(rec)
	addPeer(t, a, "b", b.Addr())

	a.Send("b", wire.Heartbeat{Nonce: 42})
	waitFor(t, func() bool { return rec.count() == 1 })
	env := rec.last()
	if env.From != "a" {
		t.Errorf("from = %q", env.From)
	}
	if hb, ok := env.Msg.(wire.Heartbeat); !ok || hb.Nonce != 42 {
		t.Errorf("msg = %#v", env.Msg)
	}
	waitFor(t, func() bool { return a.Stats().BytesOut > 0 })
	st := a.Stats()
	if st.Sends != 1 || st.Drops != 0 || st.Dials != 1 || st.PeersUp != 1 {
		t.Errorf("sender stats = %+v", st)
	}
	if bst := b.Stats(); bst.BytesIn == 0 {
		t.Errorf("receiver stats = %+v", bst)
	}
}

func TestReplyOverInboundConnection(t *testing.T) {
	a := listen(t, "a")
	b := listen(t, "b")
	recA := &collector{}
	a.SetHandler(recA)
	// b never learns a's address: it replies over the inbound connection.
	b.SetHandler(HandlerFunc(func(from wire.NodeID, msg wire.Message) {
		if hb, ok := msg.(wire.Heartbeat); ok {
			b.Send(from, wire.HeartbeatAck{Nonce: hb.Nonce})
		}
	}))
	addPeer(t, a, "b", b.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 7})
	waitFor(t, func() bool { return recA.count() == 1 })
	if ack, ok := recA.last().Msg.(wire.HeartbeatAck); !ok || ack.Nonce != 7 {
		t.Errorf("reply = %#v", recA.last().Msg)
	}
}

func TestSendToUnknownPeerDrops(t *testing.T) {
	a := listen(t, "a")
	a.Send("ghost", wire.Heartbeat{}) // must not panic or block
	st := a.Stats()
	if st.Sends != 1 || st.Drops != 1 {
		t.Errorf("stats = %+v, want sends=1 drops=1", st)
	}
}

func TestSendAfterPeerClosedDrops(t *testing.T) {
	a := listen(t, "a")
	b := listen(t, "b")
	addPeer(t, a, "b", b.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 1})
	b.Close()
	time.Sleep(20 * time.Millisecond)
	// Both sends must be safe: first may hit the dead cached conn, second
	// fails to redial.
	a.Send("b", wire.Heartbeat{Nonce: 2})
	a.Send("b", wire.Heartbeat{Nonce: 3})
}

// TestSlowPeerDialDoesNotBlockHealthySends is the regression test for the
// old transport's worst production hazard: Send used to dial on the
// caller's goroutine, so one blackholed peer (dial hangs until timeout)
// stalled the Host's entire check path. With per-peer writer goroutines the
// send to the healthy peer must be delivered while the blackholed dial is
// still hanging.
func TestSlowPeerDialDoesNotBlockHealthySends(t *testing.T) {
	const deadAddr = "192.0.2.1:9" // TEST-NET-1: never dialed, dialer intercepts
	unblock := make(chan struct{})
	cfg := fastConfig()
	cfg.Dialer = func(network, addr string, timeout time.Duration) (net.Conn, error) {
		if addr == deadAddr {
			<-unblock // a blackholed route: the dial just hangs
			return nil, errors.New("blackholed")
		}
		return net.DialTimeout(network, addr, timeout)
	}
	a, err := ListenConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the hung dial before Close waits for the writer goroutines.
	t.Cleanup(func() { a.Close() })
	t.Cleanup(func() { close(unblock) })

	b := listen(t, "b")
	rec := &collector{}
	b.SetHandler(rec)
	addPeer(t, a, "dead", deadAddr)
	addPeer(t, a, "b", b.Addr())

	a.Send("dead", wire.Heartbeat{Nonce: 1}) // writer for "dead" hangs in dial
	start := time.Now()
	a.Send("b", wire.Heartbeat{Nonce: 2})
	waitFor(t, func() bool { return rec.count() == 1 })
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("healthy send took %v while dead peer was dialing", el)
	}
	if st := a.Stats(); st.PeersConnecting != 1 {
		t.Errorf("stats = %+v, want the dead peer still connecting", st)
	}
}

// TestOutboundMaxFrameEnforced: an oversized message is dropped at the
// sender — never written to the peer — and counted.
func TestOutboundMaxFrameEnforced(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxFrame = 1024
	a, err := ListenConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b := listen(t, "b")
	rec := &collector{}
	b.SetHandler(rec)
	addPeer(t, a, "b", b.Addr())

	a.Send("b", wire.Invoke{App: "x", User: "u", Payload: make([]byte, 4096)})
	if st := a.Stats(); st.Drops != 1 {
		t.Errorf("stats = %+v, want the oversized frame dropped", st)
	}
	a.Send("b", wire.Heartbeat{Nonce: 5})
	waitFor(t, func() bool { return rec.count() == 1 })
	if hb, ok := rec.last().Msg.(wire.Heartbeat); !ok || hb.Nonce != 5 {
		t.Errorf("msg = %#v (oversized frame must not corrupt the stream)", rec.last().Msg)
	}
}

// TestAddPeerRepointDropsStaleConnection: re-pointing an id at a new
// address must stop writing to the old destination immediately.
func TestAddPeerRepointDropsStaleConnection(t *testing.T) {
	a := listen(t, "a")
	oldB := listen(t, "b")
	newB := listen(t, "b")
	oldRec, newRec := &collector{}, &collector{}
	oldB.SetHandler(oldRec)
	newB.SetHandler(newRec)

	addPeer(t, a, "b", oldB.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 1})
	waitFor(t, func() bool { return oldRec.count() == 1 })

	addPeer(t, a, "b", newB.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 2})
	a.Send("b", wire.Heartbeat{Nonce: 3})
	waitFor(t, func() bool { return newRec.count() == 2 })
	if oldRec.count() != 1 {
		t.Errorf("old destination received %d messages after re-point, want 1", oldRec.count())
	}

	// Re-adding the same address must not drop the connection.
	dials := a.Stats().Dials
	addPeer(t, a, "b", newB.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 4})
	waitFor(t, func() bool { return newRec.count() == 3 })
	if got := a.Stats().Dials; got != dials {
		t.Errorf("dials went %d -> %d after no-op AddPeer, want unchanged", dials, got)
	}
}

// TestProtocolOverTCP runs the full access-control protocol across real
// sockets: three managers, one host, grant + check + revoke.
func TestProtocolOverTCP(t *testing.T) {
	const app wire.AppID = "stocks"

	mgrNodes := make([]*Node, 3)
	mgrIDs := make([]wire.NodeID, 3)
	for i := range mgrNodes {
		mgrIDs[i] = wire.NodeID([]string{"m0", "m1", "m2"}[i])
		mgrNodes[i] = listen(t, mgrIDs[i])
	}
	hostNode := listen(t, "h0")

	// Everyone knows everyone's address.
	all := append([]*Node{hostNode}, mgrNodes...)
	for _, n := range all {
		for _, p := range all {
			if p != n {
				addPeer(t, n, p.ID(), p.Addr())
			}
		}
	}

	managers := make([]*core.Manager, 3)
	for i, node := range mgrNodes {
		managers[i] = core.NewManager(node.ID(), node, nil, nil)
		if err := managers[i].AddApp(app, core.ManagerAppConfig{
			Peers:       mgrIDs,
			CheckQuorum: 2,
			Te:          5 * time.Second,
			UpdateRetry: 100 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		managers[i].Seed(app, "root", wire.RightManage)
		managers[i].Seed(app, "alice", wire.RightUse)
		node.SetHandler(managers[i])
	}

	host := core.NewHost("h0", hostNode, nil, nil)
	if err := host.RegisterApp(app, core.HostAppConfig{
		Managers: mgrIDs,
		Policy: core.Policy{
			CheckQuorum: 2, Te: 5 * time.Second,
			QueryTimeout: 300 * time.Millisecond, MaxAttempts: 3,
		},
	}); err != nil {
		t.Fatal(err)
	}
	hostNode.SetHandler(host)

	// Check over real TCP.
	decCh := make(chan core.Decision, 1)
	host.Check(app, "alice", wire.RightUse, func(d core.Decision) { decCh <- d })
	select {
	case d := <-decCh:
		if !d.Allowed || d.Confirmations < 2 {
			t.Fatalf("decision = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("check timed out")
	}

	// Revoke via manager 0; the notice must flush the host cache.
	replyCh := make(chan wire.AdminReply, 1)
	managers[0].Submit(wire.AdminOp{
		Op: wire.OpRevoke, App: app, User: "alice", Right: wire.RightUse, Issuer: "root",
	}, func(r wire.AdminReply) { replyCh <- r })
	select {
	case r := <-replyCh:
		if !r.QuorumReached {
			t.Fatalf("revoke reply = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("revoke timed out")
	}

	waitFor(t, func() bool { return host.CacheLen() == 0 })

	host.Check(app, "alice", wire.RightUse, func(d core.Decision) { decCh <- d })
	select {
	case d := <-decCh:
		if d.Allowed {
			t.Fatalf("post-revoke decision = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-revoke check timed out")
	}
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from wire.NodeID, msg wire.Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from wire.NodeID, msg wire.Message) { f(from, msg) }

func TestCloseIdempotent(t *testing.T) {
	n := listen(t, "x")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
