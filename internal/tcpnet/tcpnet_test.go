package tcpnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"wanac/internal/core"
	"wanac/internal/wire"
)

type collector struct {
	mu  sync.Mutex
	got []wire.Envelope
}

func (c *collector) HandleMessage(from wire.NodeID, msg wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, wire.Envelope{From: from, Msg: msg})
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) last() wire.Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[len(c.got)-1]
}

func listen(t *testing.T, id wire.NodeID) *Node {
	t.Helper()
	n, err := Listen(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frame, err := encodeFrame("node-a", wire.Query{App: "x", User: "u", Right: wire.RightUse, Nonce: 3})
	if err != nil {
		t.Fatal(err)
	}
	from, msg, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if from != "node-a" {
		t.Errorf("from = %q", from)
	}
	if q, ok := msg.(wire.Query); !ok || q.Nonce != 3 {
		t.Errorf("msg = %#v", msg)
	}
}

func TestFrameRejectsBadSizes(t *testing.T) {
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-size frame accepted")
	}
	if _, _, err := readFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestSendReceive(t *testing.T) {
	a := listen(t, "a")
	b := listen(t, "b")
	rec := &collector{}
	b.SetHandler(rec)
	a.AddPeer("b", b.Addr())

	a.Send("b", wire.Heartbeat{Nonce: 42})
	waitFor(t, func() bool { return rec.count() == 1 })
	env := rec.last()
	if env.From != "a" {
		t.Errorf("from = %q", env.From)
	}
	if hb, ok := env.Msg.(wire.Heartbeat); !ok || hb.Nonce != 42 {
		t.Errorf("msg = %#v", env.Msg)
	}
}

func TestReplyOverInboundConnection(t *testing.T) {
	a := listen(t, "a")
	b := listen(t, "b")
	recA := &collector{}
	a.SetHandler(recA)
	// b never learns a's address: it replies over the inbound connection.
	b.SetHandler(HandlerFunc(func(from wire.NodeID, msg wire.Message) {
		if hb, ok := msg.(wire.Heartbeat); ok {
			b.Send(from, wire.HeartbeatAck{Nonce: hb.Nonce})
		}
	}))
	a.AddPeer("b", b.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 7})
	waitFor(t, func() bool { return recA.count() == 1 })
	if ack, ok := recA.last().Msg.(wire.HeartbeatAck); !ok || ack.Nonce != 7 {
		t.Errorf("reply = %#v", recA.last().Msg)
	}
}

func TestSendToUnknownPeerDrops(t *testing.T) {
	a := listen(t, "a")
	a.Send("ghost", wire.Heartbeat{}) // must not panic or block
}

func TestSendAfterPeerClosedDrops(t *testing.T) {
	a := listen(t, "a")
	b := listen(t, "b")
	a.AddPeer("b", b.Addr())
	a.Send("b", wire.Heartbeat{Nonce: 1})
	b.Close()
	time.Sleep(20 * time.Millisecond)
	// Both sends must be safe: first may hit the dead cached conn, second
	// fails to redial.
	a.Send("b", wire.Heartbeat{Nonce: 2})
	a.Send("b", wire.Heartbeat{Nonce: 3})
}

// TestProtocolOverTCP runs the full access-control protocol across real
// sockets: three managers, one host, grant + check + revoke.
func TestProtocolOverTCP(t *testing.T) {
	const app wire.AppID = "stocks"

	mgrNodes := make([]*Node, 3)
	mgrIDs := make([]wire.NodeID, 3)
	for i := range mgrNodes {
		mgrIDs[i] = wire.NodeID([]string{"m0", "m1", "m2"}[i])
		mgrNodes[i] = listen(t, mgrIDs[i])
	}
	hostNode := listen(t, "h0")

	// Everyone knows everyone's address.
	all := append([]*Node{hostNode}, mgrNodes...)
	for _, n := range all {
		for _, p := range all {
			if p != n {
				n.AddPeer(p.ID(), p.Addr())
			}
		}
	}

	managers := make([]*core.Manager, 3)
	for i, node := range mgrNodes {
		managers[i] = core.NewManager(node.ID(), node, nil, nil)
		if err := managers[i].AddApp(app, core.ManagerAppConfig{
			Peers:       mgrIDs,
			CheckQuorum: 2,
			Te:          5 * time.Second,
			UpdateRetry: 100 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		managers[i].Seed(app, "root", wire.RightManage)
		managers[i].Seed(app, "alice", wire.RightUse)
		node.SetHandler(managers[i])
	}

	host := core.NewHost("h0", hostNode, nil, nil)
	if err := host.RegisterApp(app, core.HostAppConfig{
		Managers: mgrIDs,
		Policy: core.Policy{
			CheckQuorum: 2, Te: 5 * time.Second,
			QueryTimeout: 300 * time.Millisecond, MaxAttempts: 3,
		},
	}); err != nil {
		t.Fatal(err)
	}
	hostNode.SetHandler(host)

	// Check over real TCP.
	decCh := make(chan core.Decision, 1)
	host.Check(app, "alice", wire.RightUse, func(d core.Decision) { decCh <- d })
	select {
	case d := <-decCh:
		if !d.Allowed || d.Confirmations < 2 {
			t.Fatalf("decision = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("check timed out")
	}

	// Revoke via manager 0; the notice must flush the host cache.
	replyCh := make(chan wire.AdminReply, 1)
	managers[0].Submit(wire.AdminOp{
		Op: wire.OpRevoke, App: app, User: "alice", Right: wire.RightUse, Issuer: "root",
	}, func(r wire.AdminReply) { replyCh <- r })
	select {
	case r := <-replyCh:
		if !r.QuorumReached {
			t.Fatalf("revoke reply = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("revoke timed out")
	}

	waitFor(t, func() bool { return host.CacheLen() == 0 })

	host.Check(app, "alice", wire.RightUse, func(d core.Decision) { decCh <- d })
	select {
	case d := <-decCh:
		if d.Allowed {
			t.Fatalf("post-revoke decision = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-revoke check timed out")
	}
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from wire.NodeID, msg wire.Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from wire.NodeID, msg wire.Message) { f(from, msg) }

func TestCloseIdempotent(t *testing.T) {
	n := listen(t, "x")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
