// Package tcpnet runs the protocol nodes over real TCP connections. It
// implements core.Env with the system clock and a connection manager that
// lazily dials peers, so the exact same Host/Manager state machines that
// run in the simulator also serve live traffic (cmd/acnode).
//
// Transport semantics match the paper's network assumption: delivery is not
// guaranteed. Send failures (peer down, connection reset) silently drop the
// message; the protocol's retry/retransmission machinery provides liveness.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"wanac/internal/core"
	"wanac/internal/wire"
)

// maxFrame bounds incoming frame size (1 MiB) to stop a misbehaving peer
// from exhausting memory.
const maxFrame = 1 << 20

// Handler receives messages from the network (same shape as the
// simulator's handler).
type Handler interface {
	HandleMessage(from wire.NodeID, msg wire.Message)
}

// Node is one TCP endpoint hosting a protocol node.
type Node struct {
	id       wire.NodeID
	listener net.Listener

	mu       sync.Mutex
	peers    map[wire.NodeID]string // address book
	conns    map[wire.NodeID]net.Conn
	allConns map[net.Conn]struct{} // every live conn, for shutdown
	handler  Handler
	closed   bool

	wg sync.WaitGroup
}

var _ core.Env = (*Node)(nil)

// Listen starts a node listening on addr ("127.0.0.1:0" picks a free port).
func Listen(id wire.NodeID, addr string) (*Node, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	n := &Node{
		id:       id,
		listener: l,
		peers:    make(map[wire.NodeID]string),
		conns:    make(map[wire.NodeID]net.Conn),
		allConns: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() wire.NodeID { return n.id }

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// SetHandler installs the protocol node that receives inbound messages.
// Must be called before peers start sending.
func (n *Node) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// AddPeer registers the address for a node id.
func (n *Node) AddPeer(id wire.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
}

// Now implements core.Env with the system clock.
func (n *Node) Now() time.Time { return time.Now() }

// SetTimer implements core.Env with time.AfterFunc.
func (n *Node) SetTimer(d time.Duration, fn func()) core.TimerHandle {
	return timerHandle{t: time.AfterFunc(d, fn)}
}

type timerHandle struct{ t *time.Timer }

func (h timerHandle) Stop() bool { return h.t.Stop() }

// Send implements core.Env: best-effort delivery to the named peer. Unknown
// peers and I/O errors drop the message silently (unreliable network).
func (n *Node) Send(to wire.NodeID, msg wire.Message) {
	conn, err := n.conn(to)
	if err != nil {
		return
	}
	frame, err := encodeFrame(n.id, msg)
	if err != nil {
		return
	}
	if _, err := conn.Write(frame); err != nil {
		n.dropConn(to, conn)
	}
}

// conn returns (dialing if necessary) the connection to a peer.
func (n *Node) conn(to wire.NodeID) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("tcpnet: node closed")
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: unknown peer %s", to)
	}
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, errors.New("tcpnet: node closed")
	}
	if existing, ok := n.conns[to]; ok { // lost the race: reuse the winner
		n.mu.Unlock()
		c.Close()
		return existing, nil
	}
	n.conns[to] = c
	n.allConns[c] = struct{}{}
	n.mu.Unlock()
	// Responses may come back on the same connection.
	n.wg.Add(1)
	go n.readLoop(c, to)
	return c, nil
}

func (n *Node) dropConn(id wire.NodeID, c net.Conn) {
	n.mu.Lock()
	if cur, ok := n.conns[id]; ok && cur == c {
		delete(n.conns, id)
	}
	n.mu.Unlock()
	c.Close()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.allConns[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(c, "")
	}
}

// readLoop decodes frames from one connection. For accepted connections the
// peer id comes from the frames themselves; the first frame also registers
// the connection for replies.
func (n *Node) readLoop(c net.Conn, expect wire.NodeID) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.allConns, c)
		// Drop routing entries that point at this dead connection so the
		// next Send redials (or uses a fresher inbound connection) instead
		// of writing into a closed socket.
		for id, cur := range n.conns {
			if cur == c {
				delete(n.conns, id)
			}
		}
		n.mu.Unlock()
	}()
	for {
		from, msg, err := readFrame(c)
		if err != nil {
			if expect != "" {
				n.dropConn(expect, c)
			}
			return
		}
		if expect != "" && from != expect {
			return // peer lied about its identity on a dialed connection
		}
		n.mu.Lock()
		h := n.handler
		if _, ok := n.conns[from]; !ok && !n.closed {
			// Remember the inbound connection for replies to this peer.
			n.conns[from] = c
		}
		n.mu.Unlock()
		if h != nil {
			h.HandleMessage(from, msg)
		}
	}
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.allConns))
	for c := range n.allConns {
		conns = append(conns, c)
	}
	n.conns = make(map[wire.NodeID]net.Conn)
	n.allConns = make(map[net.Conn]struct{})
	n.mu.Unlock()

	err := n.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return err
}

// Frame format: u32 big-endian length, then uvarint-prefixed sender id,
// then the binary-marshaled message.
func encodeFrame(from wire.NodeID, msg wire.Message) ([]byte, error) {
	body, err := wire.Marshal(msg)
	if err != nil {
		return nil, err
	}
	id := []byte(from)
	payload := make([]byte, 0, 4+1+len(id)+len(body))
	payload = append(payload, 0, 0, 0, 0)
	payload = binary.AppendUvarint(payload, uint64(len(id)))
	payload = append(payload, id...)
	payload = append(payload, body...)
	if len(payload)-4 > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame too large (%d bytes)", len(payload)-4)
	}
	binary.BigEndian.PutUint32(payload[:4], uint32(len(payload)-4))
	return payload, nil
}

func readFrame(r io.Reader) (wire.NodeID, wire.Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size == 0 || size > maxFrame {
		return "", nil, fmt.Errorf("tcpnet: bad frame size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	idLen, nn := binary.Uvarint(buf)
	if nn <= 0 || idLen > uint64(len(buf)-nn) {
		return "", nil, errors.New("tcpnet: bad sender id")
	}
	from := wire.NodeID(buf[nn : nn+int(idLen)])
	msg, err := wire.Unmarshal(buf[nn+int(idLen):])
	if err != nil {
		return "", nil, err
	}
	return from, msg, nil
}
