// Package tcpnet runs the protocol nodes over real TCP connections. It
// implements core.Env with the system clock and the netcore transport core:
// every peer has a bounded outbound queue drained by a dedicated writer
// goroutine, so Send never blocks or dials on the caller's goroutine, and
// dead peers are redialed with jittered exponential backoff without ever
// delaying traffic to healthy peers (cmd/acnode).
//
// Transport semantics match the paper's network assumption: delivery is not
// guaranteed. Send failures (peer down, queue overflow, connection reset)
// drop the message — counted in Stats — and the protocol's
// retry/retransmission machinery provides liveness.
package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wanac/internal/core"
	"wanac/internal/netcore"
	"wanac/internal/wire"
)

// maxFrame bounds frame size (1 MiB) in both directions, stopping a
// misbehaving peer from exhausting memory and an oversized outbound message
// from wedging a connection.
const maxFrame = netcore.DefaultMaxFrame

// Handler receives messages from the network (same shape as the
// simulator's handler).
type Handler = netcore.Handler

// Node is one TCP endpoint hosting a protocol node.
type Node struct {
	id       wire.NodeID
	listener net.Listener
	cfg      netcore.Config
	group    *netcore.Group

	mu      sync.Mutex
	addrs   map[wire.NodeID]string // address book
	conns   map[net.Conn]struct{}  // every live conn, for shutdown
	handler Handler
	closed  bool

	wg sync.WaitGroup
}

var _ core.Env = (*Node)(nil)

// Listen starts a node listening on addr ("127.0.0.1:0" picks a free port)
// with default transport tuning.
func Listen(id wire.NodeID, addr string) (*Node, error) {
	return ListenConfig(id, addr, netcore.BuildConfig())
}

// ListenConfig starts a node with explicit transport tuning (queue depth,
// backoff, deadlines — see netcore.Config).
func ListenConfig(id wire.NodeID, addr string, cfg netcore.Config) (*Node, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	n := &Node{
		id:       id,
		listener: l,
		addrs:    make(map[wire.NodeID]string),
		conns:    make(map[net.Conn]struct{}),
	}
	// Framing lets the peer writers encode (and coalesce) queued messages
	// themselves: stream frames up to MaxFrame, stamped with our id.
	limit := cfg.MaxFrame
	if limit <= 0 {
		limit = netcore.DefaultMaxFrame
	}
	cfg.Framing = &netcore.Framing{From: id, Stream: true, Limit: limit}
	n.group = netcore.NewGroup(string(id), cfg)
	n.cfg = n.group.Config()
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() wire.NodeID { return n.id }

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Stats returns a snapshot of the transport's counters, queue depths, and
// peer health.
func (n *Node) Stats() netcore.TransportStats { return n.group.Stats() }

// SetHandler installs the protocol node that receives inbound messages.
// Must be called before peers start sending.
func (n *Node) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// AddPeer registers the address for a node id. Re-pointing an existing peer
// at a new address drops any connection to the old address, so no frame is
// ever written to the stale destination.
func (n *Node) AddPeer(id wire.NodeID, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("tcpnet: empty peer id or address")
	}
	n.mu.Lock()
	old, had := n.addrs[id]
	n.addrs[id] = addr
	n.mu.Unlock()
	if p := n.group.Get(id); p != nil {
		p.SetDial(n.dialFunc(id, addr), had && old != addr)
	}
	return nil
}

// Now implements core.Env with the system clock.
func (n *Node) Now() time.Time { return time.Now() }

// SetTimer implements core.Env with time.AfterFunc.
func (n *Node) SetTimer(d time.Duration, fn func()) core.TimerHandle {
	return timerHandle{t: time.AfterFunc(d, fn)}
}

type timerHandle struct{ t *time.Timer }

func (h timerHandle) Stop() bool { return h.t.Stop() }

// Send implements core.Env: best-effort delivery to the named peer. The
// message is queued un-encoded on the peer's writer goroutine — which
// encodes it at flush time, coalescing it with other same-peer messages
// into one frame and one socket write — and this call returns immediately.
// Unknown peers, oversized messages, and queue overflow drop the message
// (unreliable network), counted in Stats.
func (n *Node) Send(to wire.NodeID, msg wire.Message) {
	ctr := n.group.Counters()
	ctr.Sends.Add(1)
	// Pre-validate with the exact size so callers still see oversized and
	// unmarshalable messages dropped at send time, not at flush time.
	size, err := wire.Size(msg)
	if err != nil || netcore.FrameOverhead(n.id)+size > n.cfg.MaxFrame {
		ctr.Drops.Add(1)
		return
	}
	p := n.peer(to)
	if p == nil {
		ctr.Drops.Add(1)
		return
	}
	p.EnqueueMessage(msg)
}

// peer returns the netcore peer for id, creating it if the address book
// knows the address (or an inbound connection registered the id). Returns
// nil for unknown peers.
func (n *Node) peer(id wire.NodeID) *netcore.Peer {
	if p := n.group.Get(id); p != nil {
		return p
	}
	n.mu.Lock()
	addr, ok := n.addrs[id]
	n.mu.Unlock()
	if !ok {
		return nil
	}
	return n.group.Ensure(id, n.dialFunc(id, addr))
}

// dialFunc builds the netcore DialFunc for one peer address: dial with
// timeout, register the connection, start its read loop (responses come
// back on the same connection), and hand netcore a deadline-enforcing
// sender. Runs only on the peer's writer goroutine.
func (n *Node) dialFunc(id wire.NodeID, addr string) netcore.DialFunc {
	return func() (netcore.Sender, error) {
		c, err := n.cfg.Dialer("tcp", addr, n.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		if !n.register(c) {
			c.Close()
			return nil, errors.New("tcpnet: node closed")
		}
		s := &connSender{conn: c, timeout: n.cfg.WriteTimeout}
		n.wg.Add(1)
		go n.readLoop(c, s, id)
		return s, nil
	}
}

// register tracks a live connection for shutdown; it refuses connections
// once the node is closed.
func (n *Node) register(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

// connSender writes length-prefixed frames with a per-write deadline.
type connSender struct {
	conn    net.Conn
	timeout time.Duration
}

func (s *connSender) WriteFrame(frame []byte) error {
	if s.timeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	}
	_, err := s.conn.Write(frame)
	return err
}

// WriteBatch writes every frame under one deadline with one writev-backed
// net.Buffers write, so a coalesced flush costs one syscall regardless of
// frame count. net.Buffers consumes fully-written entries from the slice,
// so frames-written is the count that disappeared; a trailing partial
// frame stays in the slice and counts as unwritten (the connection is
// discarded on error, taking the partial bytes with it).
func (s *connSender) WriteBatch(frames net.Buffers) (int, error) {
	total := len(frames)
	if s.timeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	}
	_, err := frames.WriteTo(s.conn)
	return total - len(frames), err
}

func (s *connSender) Close() error { return s.conn.Close() }

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.register(c) {
			c.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(c, nil, "")
	}
}

// readLoop decodes frames from one connection. For accepted connections
// (sender == nil) the peer id comes from the frames themselves; the first
// frame offers the connection to that peer for replies. For dialed
// connections the peer id is pinned and mismatching frames kill the
// connection.
func (n *Node) readLoop(c net.Conn, sender netcore.Sender, expect wire.NodeID) {
	defer n.wg.Done()
	adoptedBy := expect
	var adopted netcore.Sender = sender
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
		// Detach the dead connection from its peer so the writer redials
		// (or uses a fresher inbound connection) instead of writing into a
		// closed socket.
		if adopted != nil {
			if p := n.group.Get(adoptedBy); p != nil {
				p.Discard(adopted)
			}
		}
	}()
	r := &countingReader{conn: c, bytes: &n.group.Counters().BytesIn}
	for {
		if n.cfg.ReadIdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(n.cfg.ReadIdleTimeout))
		}
		from, msg, err := netcore.ReadStreamFrame(r, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		if expect != "" && from != expect {
			return // peer lied about its identity on a dialed connection
		}
		if adopted == nil {
			// Remember the inbound connection for replies to this peer. The
			// peer keeps it only while it has no live connection of its own.
			s := &connSender{conn: c, timeout: n.cfg.WriteTimeout}
			if p := n.inboundPeer(from); p != nil && p.Adopt(s) {
				adopted, adoptedBy = s, from
			}
		}
		n.mu.Lock()
		h := n.handler
		n.mu.Unlock()
		if h != nil {
			// Deliver unwraps coalesced wire.Batch frames so the handler
			// only ever sees protocol messages, in send order.
			netcore.Deliver(h, from, msg)
		}
	}
}

// countingReader tallies received bytes into the transport's BytesIn
// counter as frames are read off a connection.
type countingReader struct {
	conn  net.Conn
	bytes *atomic.Uint64
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.conn.Read(p)
	if n > 0 {
		r.bytes.Add(uint64(n))
	}
	return n, err
}

// inboundPeer returns (creating if necessary) the peer record for an id
// seen on an accepted connection. The peer dials through the address book
// when the id is known there, and is reply-only otherwise.
func (n *Node) inboundPeer(id wire.NodeID) *netcore.Peer {
	if p := n.group.Get(id); p != nil {
		return p
	}
	n.mu.Lock()
	addr, ok := n.addrs[id]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil
	}
	var dial netcore.DialFunc
	if ok {
		dial = n.dialFunc(id, addr)
	}
	return n.group.Ensure(id, dial)
}

// Close shuts the node down: stop accepting, drain outbound queues up to
// the drain deadline, close every connection, and wait for all goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	err := n.listener.Close()
	// Drain writers first so queued frames get a chance to flush through
	// still-open connections.
	n.group.Close()
	n.mu.Lock()
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return err
}
