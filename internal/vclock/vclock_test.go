package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRealNow(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Errorf("Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(3 * time.Second)
	if got, want := v.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
	v.Advance(-time.Hour) // negative ignored
	if got, want := v.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Errorf("after negative Advance, Now() = %v, want %v", got, want)
	}
	v.Advance(0)
	if got, want := v.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Errorf("after zero Advance, Now() = %v, want %v", got, want)
	}
}

func TestVirtualSetMonotonic(t *testing.T) {
	v := NewVirtual()
	target := Epoch.Add(time.Minute)
	v.Set(target)
	if !v.Now().Equal(target) {
		t.Errorf("Now() = %v, want %v", v.Now(), target)
	}
	v.Set(Epoch) // backwards jump ignored
	if !v.Now().Equal(target) {
		t.Errorf("Set went backwards: Now() = %v, want %v", v.Now(), target)
	}
}

func TestVirtualMonotoneQuick(t *testing.T) {
	f := func(steps []int16) bool {
		v := NewVirtual()
		prev := v.Now()
		for _, s := range steps {
			v.Advance(time.Duration(s) * time.Millisecond)
			now := v.Now()
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDriftingSlowClock(t *testing.T) {
	base := NewVirtual()
	d := NewDrifting(base, 0.5) // runs at half speed
	base.Advance(10 * time.Second)
	elapsed := d.Now().Sub(Epoch)
	if elapsed != 5*time.Second {
		t.Errorf("drifted elapsed = %v, want 5s", elapsed)
	}
	if d.Rate() != 0.5 {
		t.Errorf("Rate() = %v, want 0.5", d.Rate())
	}
}

func TestDriftingFastClock(t *testing.T) {
	base := NewVirtual()
	d := NewDrifting(base, 2.0)
	base.Advance(10 * time.Second)
	if elapsed := d.Now().Sub(Epoch); elapsed != 20*time.Second {
		t.Errorf("drifted elapsed = %v, want 20s", elapsed)
	}
}

func TestDriftingUnitRateMatchesBase(t *testing.T) {
	base := NewVirtual()
	d := NewDrifting(base, 1.0)
	base.Advance(7 * time.Hour)
	if !d.Now().Equal(base.Now()) {
		t.Errorf("unit-rate drift diverged: %v vs %v", d.Now(), base.Now())
	}
}

func TestExpirationPeriod(t *testing.T) {
	cases := []struct {
		te   time.Duration
		b    float64
		want time.Duration
	}{
		{10 * time.Minute, 1.0, 10 * time.Minute},
		{10 * time.Minute, 0.5, 5 * time.Minute},
		{10 * time.Minute, 0.9, 9 * time.Minute},
		{10 * time.Minute, 0, 10 * time.Minute},   // invalid b: fall back to Te
		{10 * time.Minute, 1.5, 10 * time.Minute}, // invalid b: fall back to Te
		{10 * time.Minute, -1, 10 * time.Minute},
	}
	for _, c := range cases {
		if got := ExpirationPeriod(c.te, c.b); got != c.want {
			t.Errorf("ExpirationPeriod(%v, %v) = %v, want %v", c.te, c.b, got, c.want)
		}
	}
}

// TestExpirationGuarantee checks the paper's §3.2 clock-drift argument
// end to end: a host whose clock runs at the slowest legal rate (measuring
// b local units per real unit) and expires entries after te = Te*b local
// units holds a right for at most Te real units.
func TestExpirationGuarantee(t *testing.T) {
	const b = 0.8
	te := 10 * time.Minute
	localPeriod := ExpirationPeriod(te, b)

	base := NewVirtual()         // real time
	host := NewDrifting(base, b) // slowest legal local clock
	grantLocal := host.Now()     // host caches a grant now
	deadline := grantLocal.Add(localPeriod)

	// Advance real time to exactly Te: the local clock must have reached
	// (or passed) the expiration deadline.
	base.Advance(te)
	if host.Now().Before(deadline) {
		t.Errorf("after Te real time, local clock %v still before deadline %v: entry would outlive Te",
			host.Now(), deadline)
	}
}

func TestExpirationGuaranteeQuick(t *testing.T) {
	f := func(rateMilli uint16, teSec uint32) bool {
		// rate in (b, 1]: any legal clock at least as fast as the bound.
		b := 0.5
		rate := b + float64(rateMilli%500)/1000.0 // [0.5, 1.0)
		te := time.Duration(teSec%86400+1) * time.Second
		localPeriod := ExpirationPeriod(te, b)

		base := NewVirtual()
		host := NewDrifting(base, rate)
		deadline := host.Now().Add(localPeriod)
		base.Advance(te)
		// Faster clocks expire earlier; the guarantee is one-sided.
		return !host.Now().Before(deadline) || rate < b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVirtualConcurrentAccess(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			v.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = v.Now()
	}
	<-done
	if got, want := v.Now(), Epoch.Add(time.Second); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
}
