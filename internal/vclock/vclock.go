// Package vclock provides the clock substrate for the access control
// protocol: real clocks, deterministic virtual clocks for discrete-event
// simulation, and drifting clocks that model the paper's bounded clock-rate
// assumption (every local clock is at most a factor b slower than real time).
//
// The protocol code never reads time.Now directly; it always goes through a
// Clock so that the same code runs in real deployments, goroutine-based
// integration tests, and fast-forward Monte Carlo simulations.
package vclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source the protocol depends on.
type Clock interface {
	// Now returns the current reading of this clock. For a Drifting clock
	// this is local (skewed) time, not real time.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Drifting wraps a base clock and applies a constant rate factor, modeling
// the paper's assumption b*Ci(t) <= t: a clock with Rate r measures r local
// time units per real time unit. Rate < 1 means the clock runs slow (the
// worst case for expiration-based revocation), Rate > 1 means it runs fast.
type Drifting struct {
	base   Clock
	origin time.Time
	rate   float64
}

var _ Clock = (*Drifting)(nil)

// NewDrifting returns a clock that reads origin + rate*(base.Now()-origin).
// The origin anchors the skew so that drift accumulates from a known point.
func NewDrifting(base Clock, rate float64) *Drifting {
	return &Drifting{base: base, origin: base.Now(), rate: rate}
}

// Now returns the drifted local time.
func (d *Drifting) Now() time.Time {
	elapsed := d.base.Now().Sub(d.origin)
	return d.origin.Add(time.Duration(float64(elapsed) * d.rate))
}

// Rate returns the configured clock rate.
func (d *Drifting) Rate() float64 { return d.rate }

// Virtual is a manually advanced clock for deterministic discrete-event
// simulation. It is safe for concurrent use, though the event-driven
// simulator typically drives it from a single goroutine.
type Virtual struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// Epoch is the default start time for virtual clocks: an arbitrary fixed
// instant so simulation traces are reproducible byte-for-byte.
var Epoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock starting at Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a virtual clock starting at the given instant.
func NewVirtualAt(start time.Time) *Virtual { return &Virtual{now: start} }

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Advance moves the clock forward by d. Negative d is ignored: virtual time
// never goes backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set jumps the clock to t if t is not before the current time.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// ExpirationPeriod converts a desired global revocation bound Te into the
// local expiration period te = Te*b that managers hand to application hosts
// (§3.2). The paper assumes a known constant b with b*Ci(t) <= t (0 < b <= 1):
// measuring t local units takes at most t/b real units, i.e. every local
// clock is at most a factor 1/b slower than real time. A host that expires a
// cached right after te = Te*b local units therefore holds it for at most
// te/b = Te real units, so revocation is guaranteed within Te even on the
// slowest legal clock.
func ExpirationPeriod(te time.Duration, b float64) time.Duration {
	if b <= 0 || b > 1 {
		return te
	}
	return time.Duration(float64(te) * b)
}
