package fleet

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"wanac/internal/telemetry"
)

// How families fold across nodes. Counters and histogram components
// always sum (cumulative event counts add; summed cumulative bucket
// counts are exactly the merged histogram). Gauges fold by per-family
// policy: most wanac gauges are extensive quantities (queue depths,
// cache entries) where the fleet value is the sum, but a few are not.
type gaugeFold int

const (
	foldSum gaugeFold = iota
	foldMax
	foldMin
)

// gaugePolicy overrides the default sum fold for gauge families where
// adding across nodes would be meaningless.
var gaugePolicy = map[string]gaugeFold{
	// The widest effective Te in the fleet is the bound operators must
	// assume revocations can take.
	"wanac_manager_effective_te_seconds": foldMax,
	// The oldest process start is the fleet's uptime anchor.
	"wanac_process_start_time_seconds": foldMin,
	// A ratio: the worst cell is the honest fleet headline.
	"wanac_host_cache_hit_ratio": foldMin,
}

// series is one merged sample line.
type series struct {
	name   string
	labels []telemetry.Label // exposition order, le kept numeric-sortable
	value  float64
	n      int // nodes folded in (for min/max/avg policies)
}

// merged is a fleet-wide rollup of N parsed expositions.
type merged struct {
	types  map[string]string
	help   map[string]string
	series map[string]*series
}

func newMerged() *merged {
	return &merged{
		types:  make(map[string]string),
		help:   make(map[string]string),
		series: make(map[string]*series),
	}
}

// seriesKey canonicalizes a sample identity: series name plus label
// pairs sorted by label name.
func seriesKey(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	pairs := make([]string, len(labels))
	for i, l := range labels {
		pairs[i] = l.Name + "\x00" + l.Value
	}
	sort.Strings(pairs)
	return name + "\x01" + strings.Join(pairs, "\x02")
}

// add folds one node's parsed exposition into the rollup.
func (m *merged) add(src *telemetry.Metrics) error {
	for name, typ := range src.Types {
		if prev, ok := m.types[name]; ok && prev != typ {
			return fmt.Errorf("fleet: family %s is %s on one node, %s on another", name, prev, typ)
		}
		m.types[name] = typ
	}
	for name, help := range src.Help {
		if _, ok := m.help[name]; !ok {
			m.help[name] = help
		}
	}
	for _, s := range src.Samples {
		fam := src.Family(s.Name)
		key := seriesKey(s.Name, s.Labels)
		cur, ok := m.series[key]
		if !ok {
			m.series[key] = &series{
				name:   s.Name,
				labels: append([]telemetry.Label(nil), s.Labels...),
				value:  s.Value,
				n:      1,
			}
			continue
		}
		cur.n++
		if m.types[fam] == "gauge" {
			switch gaugePolicy[fam] {
			case foldMax:
				cur.value = math.Max(cur.value, s.Value)
			case foldMin:
				cur.value = math.Min(cur.value, s.Value)
			default:
				cur.value += s.Value
			}
			continue
		}
		// Counters, histogram buckets/sums/counts, untyped: sum.
		cur.value += s.Value
	}
	return nil
}

// sum adds the values of every series with the given name that matches
// the filter (nil matches all).
func (m *merged) sum(name string, match func(s *series) bool) float64 {
	total := 0.0
	for _, s := range m.series {
		if s.name != name {
			continue
		}
		if match != nil && !match(s) {
			continue
		}
		total += s.value
	}
	return total
}

// label returns a series' label value ("" when absent).
func (s *series) label(name string) string {
	for _, l := range s.labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// histogram reconstructs the fleet-wide snapshot of one histogram
// family, folding every label set (nodes and family labels alike):
// cumulative bucket values are summed per le bound, then differenced.
func (m *merged) histogram(family string) (telemetry.HistogramSnapshot, error) {
	if t := m.types[family]; t != "histogram" {
		return telemetry.HistogramSnapshot{}, fmt.Errorf("fleet: %q is %q, not a histogram", family, t)
	}
	byLe := make(map[float64]float64)
	var snap telemetry.HistogramSnapshot
	for _, s := range m.series {
		switch s.name {
		case family + "_bucket":
			le, err := strconv.ParseFloat(strings.Replace(s.label("le"), "+Inf", "Inf", 1), 64)
			if err != nil {
				return telemetry.HistogramSnapshot{}, fmt.Errorf("fleet: bad le on %s: %v", s.name, err)
			}
			byLe[le] += s.value
		case family + "_sum":
			snap.Sum += s.value
		}
	}
	if len(byLe) == 0 {
		return telemetry.HistogramSnapshot{}, fmt.Errorf("fleet: no %s_bucket series", family)
	}
	les := make([]float64, 0, len(byLe))
	for le := range byLe {
		les = append(les, le)
	}
	sort.Float64s(les)
	if !math.IsInf(les[len(les)-1], +1) {
		return telemetry.HistogramSnapshot{}, fmt.Errorf("fleet: %s has no +Inf bucket", family)
	}
	prev := 0.0
	for _, le := range les {
		if !math.IsInf(le, +1) {
			snap.Upper = append(snap.Upper, le)
		}
		snap.Counts = append(snap.Counts, uint64(byLe[le]-prev))
		prev = byLe[le]
	}
	snap.Count = uint64(byLe[les[len(les)-1]])
	return snap, nil
}

// write renders the rollup in Prometheus text format, skipping families
// in the exclude set (the monitor's own registry wins name collisions).
// Families are sorted by name, series within a family by name then
// labels, with histogram le bounds in numeric order.
func (m *merged) write(w io.Writer, exclude map[string]bool) error {
	fams := make([]string, 0, len(m.types))
	for name := range m.types {
		if !exclude[name] {
			fams = append(fams, name)
		}
	}
	sort.Strings(fams)

	byFam := make(map[string][]*series, len(fams))
	for _, s := range m.series {
		byFam[m.family(s.name)] = append(byFam[m.family(s.name)], s)
	}
	for _, name := range fams {
		ss := byFam[name]
		sort.Slice(ss, func(i, j int) bool {
			a, b := ss[i], ss[j]
			if a.name != b.name {
				return a.name < b.name
			}
			if la, lb := a.label("le"), b.label("le"); la != lb {
				// Bucket series compare by non-le labels first, bound last.
				if ka, kb := stripLe(a), stripLe(b); ka != kb {
					return ka < kb
				}
				return leValue(la) < leValue(lb)
			}
			return seriesKey(a.name, a.labels) < seriesKey(b.name, b.labels)
		})
		if help, ok := m.help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.types[name]); err != nil {
			return err
		}
		for _, s := range ss {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// family maps a series name to its declared family (mirrors
// telemetry.Metrics.Family over the merged type table).
func (m *merged) family(seriesName string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(seriesName, suf); base != seriesName {
			if t := m.types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return seriesName
}

func stripLe(s *series) string {
	rest := make([]telemetry.Label, 0, len(s.labels))
	for _, l := range s.labels {
		if l.Name != "le" {
			rest = append(rest, l)
		}
	}
	return seriesKey(s.name, rest)
}

func leValue(s string) float64 {
	if s == "+Inf" {
		return math.Inf(+1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.Inf(+1)
	}
	return v
}

func writeSeries(w io.Writer, s *series) error {
	var b strings.Builder
	b.WriteString(s.name)
	if len(s.labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(s.value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
