// Package fleet aggregates a deployment's health: it scrapes each
// node's /metrics exposition, merges the families fleet-wide (counters
// and histogram buckets sum; gauges fold by per-family policy), and
// evaluates the same SLO specs the scenario suite checks in simulation
// — check latency, check availability, revocation propagation against
// the configured Te, per-lane queue drops — with multi-window burn-rate
// alerting and error-budget accounting (internal/slo).
//
// The Monitor re-exports the fleet rollup plus its own meta-metrics and
// alert states on /metrics, answers /health with ready/degraded, keeps
// an append-only JSONL stream of health snapshots, and renders a
// terminal dashboard. cmd/acmon is the thin CLI on top.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"wanac/internal/core"
	"wanac/internal/slo"
	"wanac/internal/telemetry"
)

// A Target is one node to scrape: a name for display and label use, and
// the base address of its debug endpoint (host:port, no scheme).
type Target struct {
	Name string
	Addr string
}

// Config parameterizes a Monitor.
type Config struct {
	// Targets are the nodes to scrape. Required, at least one.
	Targets []Target
	// Te is the deployment's revocation bound, the reference for the
	// revocation-propagation SLO. Zero disables that SLO.
	Te time.Duration
	// QueryTimeout is the hosts' query timeout, the threshold for the
	// check-latency SLO. Zero means core.DefaultQueryTimeout.
	QueryTimeout time.Duration
	// Every is the scrape interval for Run. Default 5s.
	Every time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// Client performs the scrapes; nil means a client with a per-scrape
	// timeout of Every (or 5s).
	Client *http.Client
	// JSONL, if non-nil, receives one JSON health snapshot per scrape.
	JSONL io.Writer
}

// Monitor is a fleet aggregator. Create with New, drive with ScrapeOnce
// or Run, serve with Handler.
type Monitor struct {
	cfg    Config
	now    func() time.Time
	client *http.Client
	engine *slo.Engine
	reg    *telemetry.Registry
	// ownFams are the families the monitor's own registry exports; the
	// re-exported rollup skips these (own-registry wins collisions).
	ownFams map[string]bool

	mu       sync.Mutex
	last     *merged   // latest fleet rollup (nil before first scrape)
	lastAt   time.Time // when the latest scrape finished
	up       int       // targets scraped successfully in the latest round
	scrapes  uint64
	perr     map[string]string // target name → latest scrape error ("" = ok)
	jsonlErr error
}

// New builds a Monitor. It panics on an invalid config (no targets),
// matching the registry's fail-fast posture for programming errors.
func New(cfg Config) *Monitor {
	if len(cfg.Targets) == 0 {
		panic("fleet: config needs at least one target")
	}
	if cfg.Every <= 0 {
		cfg.Every = 5 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Every}
	}
	m := &Monitor{
		cfg:    cfg,
		now:    now,
		client: client,
		reg:    telemetry.NewRegistry(),
		perr:   make(map[string]string, len(cfg.Targets)),
	}
	m.engine = slo.NewEngine(now, m.specs()...)
	m.register()
	m.engine.Sample() // baseline: budget accounting starts at attach time
	return m
}

// latest returns the current rollup under the lock (may be nil).
func (m *Monitor) latest() *merged {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// specs builds the fleet SLO set. Indicators read the latest merged
// rollup, so cumulative reads survive node restarts only as well as the
// underlying counters do — the slo engine rebaselines on regression.
func (m *Monitor) specs() []slo.Spec {
	qt := m.cfg.QueryTimeout
	if qt == 0 {
		qt = core.DefaultQueryTimeout
	}

	histSnap := func(family string) func() telemetry.HistogramSnapshot {
		return func() telemetry.HistogramSnapshot {
			mg := m.latest()
			if mg == nil {
				return telemetry.HistogramSnapshot{}
			}
			snap, err := mg.histogram(family)
			if err != nil {
				return telemetry.HistogramSnapshot{}
			}
			return snap
		}
	}

	checkLatency := slo.Spec{
		Name:      "check-latency",
		Help:      "Checks decided within the query timeout, fleet-wide.",
		Objective: 0.99,
		Indicator: slo.Latency(qt.Seconds(), histSnap("wanac_host_check_latency_seconds")),
	}

	availability := slo.Spec{
		Name:      "check-availability",
		Help:      "Checks answered by the protocol: ok/(ok+timeout+shed), fleet-wide.",
		Objective: 0.99,
		Indicator: slo.Ratio(func() (float64, float64) {
			mg := m.latest()
			if mg == nil {
				return 0, 0
			}
			outcome := func(want string) func(*series) bool {
				return func(s *series) bool { return s.label("outcome") == want }
			}
			ok := mg.sum("wanac_host_checks_total", outcome("cache_hit")) +
				mg.sum("wanac_host_checks_total", outcome("allowed")) +
				mg.sum("wanac_host_checks_total", outcome("denied"))
			bad := mg.sum("wanac_host_checks_total", outcome("default_allowed")) +
				mg.sum("wanac_host_query_timeouts_total", nil) +
				mg.sum("wanac_manager_queries_total", func(s *series) bool {
					return s.label("result") == "shed"
				})
			return ok, ok + bad
		}),
	}

	specs := []slo.Spec{checkLatency, availability}

	if m.cfg.Te > 0 {
		specs = append(specs, slo.Spec{
			Name: "revocation-propagation",
			Help: "Revocations fully propagated within the configured Te.",
			// Te is the paper's hard bound; spending more than 1% of
			// revocations past it means the deployment no longer delivers
			// the guarantee operators planned policy around.
			Objective: 0.99,
			Indicator: slo.Latency(m.cfg.Te.Seconds(),
				histSnap("wanac_manager_revocation_propagation_seconds")),
		})
	}

	for _, lane := range []string{"bulk", "high"} {
		lane := lane
		specs = append(specs, slo.Spec{
			Name:      "lane-drops-" + lane,
			Help:      "Transport arrivals admitted on the " + lane + " lane, fleet-wide.",
			Objective: 0.95,
			Indicator: slo.Ratio(func() (float64, float64) {
				mg := m.latest()
				if mg == nil {
					return 0, 0
				}
				match := func(s *series) bool { return s.label("lane") == lane }
				admitted := mg.sum("wanac_transport_lane_enqueued_total", match)
				dropped := mg.sum("wanac_transport_lane_drops_total", match)
				return admitted, admitted + dropped
			}),
		})
	}
	return specs
}

// register populates the monitor's own registry: build info, the SLO
// families, and the scrape meta-metrics. The family set is recorded so
// the re-export can give these precedence over same-named node families.
func (m *Monitor) register() {
	telemetry.RegisterBuildInfo(m.reg)
	m.engine.Register(m.reg)
	m.reg.GaugeFunc("wanac_fleet_targets", "Configured scrape targets.",
		func() float64 { return float64(len(m.cfg.Targets)) })
	m.reg.GaugeFunc("wanac_fleet_targets_up", "Targets scraped successfully in the latest round.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.up)
		})
	scrapes := m.reg.CounterVec("wanac_fleet_scrapes_total",
		"Scrape attempts by target and outcome.", "target", "outcome")
	for _, t := range m.cfg.Targets {
		scrapes.With(t.Name, "ok")
		scrapes.With(t.Name, "error")
	}

	// Record the monitor's families by rendering and re-parsing its own
	// exposition: the same strict parser the scraper uses, so the
	// exclusion set can never drift from what the registry actually
	// writes.
	var b bytes.Buffer
	if err := m.reg.WritePrometheus(&b); err != nil {
		panic(fmt.Sprintf("fleet: render own registry: %v", err))
	}
	own, err := telemetry.ParseMetrics(&b)
	if err != nil {
		panic(fmt.Sprintf("fleet: parse own registry: %v", err))
	}
	m.ownFams = make(map[string]bool, len(own.Types))
	for name := range own.Types {
		m.ownFams[name] = true
	}
}

// ScrapeOnce scrapes every target, folds the expositions into a fresh
// rollup, samples the SLO engine, and appends a JSONL snapshot. A
// target that fails to scrape is recorded (targets_up, scrape errors)
// but does not abort the round; the returned error is non-nil only when
// no target could be scraped at all.
func (m *Monitor) ScrapeOnce(ctx context.Context) error {
	mg := newMerged()
	up := 0
	errs := make(map[string]string, len(m.cfg.Targets))
	scrapes := m.reg.CounterVec("wanac_fleet_scrapes_total",
		"Scrape attempts by target and outcome.", "target", "outcome")
	for _, t := range m.cfg.Targets {
		if err := m.scrapeTarget(ctx, t, mg); err != nil {
			errs[t.Name] = err.Error()
			scrapes.With(t.Name, "error").Inc()
			continue
		}
		errs[t.Name] = ""
		scrapes.With(t.Name, "ok").Inc()
		up++
	}

	m.mu.Lock()
	m.scrapes++
	m.up = up
	m.perr = errs
	if up > 0 {
		m.last = mg
	}
	m.lastAt = m.now()
	m.mu.Unlock()

	statuses := m.engine.Sample()
	m.writeJSONL(statuses)
	if up == 0 {
		return fmt.Errorf("fleet: all %d targets failed to scrape", len(m.cfg.Targets))
	}
	return nil
}

// scrapeTarget fetches and strictly parses one node's exposition into
// the rollup.
func (m *Monitor) scrapeTarget(ctx context.Context, t Target, mg *merged) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+t.Addr+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", t.Name, resp.Status)
	}
	parsed, err := telemetry.ParseMetrics(resp.Body)
	if err != nil {
		return fmt.Errorf("%s: %w", t.Name, err)
	}
	return mg.add(parsed)
}

// Run scrapes on the configured interval until ctx is done. The first
// scrape happens immediately.
func (m *Monitor) Run(ctx context.Context) error {
	tick := time.NewTicker(m.cfg.Every)
	defer tick.Stop()
	for {
		m.ScrapeOnce(ctx) // partial rounds already surface via metrics/health
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// healthSnapshot is one JSONL line: the fleet's state after a scrape.
type healthSnapshot struct {
	Time      time.Time         `json:"time"`
	Targets   int               `json:"targets"`
	TargetsUp int               `json:"targets_up"`
	Healthy   bool              `json:"healthy"`
	Errors    map[string]string `json:"scrape_errors,omitempty"`
	SLO       []sloSnapshot     `json:"slo"`
}

type sloSnapshot struct {
	Name           string  `json:"name"`
	Objective      float64 `json:"objective"`
	SLI            float64 `json:"sli"`
	FastBurn       float64 `json:"fast_burn"`
	SlowBurn       float64 `json:"slow_burn"`
	BudgetConsumed float64 `json:"budget_consumed"`
	Firing         bool    `json:"firing"`
	Fired          int     `json:"fired"`
}

func (m *Monitor) writeJSONL(statuses []slo.Status) {
	if m.cfg.JSONL == nil {
		return
	}
	snap := healthSnapshot{
		Targets: len(m.cfg.Targets),
		SLO:     make([]sloSnapshot, 0, len(statuses)),
	}
	m.mu.Lock()
	snap.Time = m.lastAt
	snap.TargetsUp = m.up
	for name, e := range m.perr {
		if e != "" {
			if snap.Errors == nil {
				snap.Errors = make(map[string]string)
			}
			snap.Errors[name] = e
		}
	}
	m.mu.Unlock()
	firing := false
	for _, st := range statuses {
		if st.Firing {
			firing = true
		}
		snap.SLO = append(snap.SLO, sloSnapshot{
			Name:           st.Name,
			Objective:      st.Objective,
			SLI:            st.SLI,
			FastBurn:       st.FastBurn,
			SlowBurn:       st.SlowBurn,
			BudgetConsumed: st.BudgetConsumed,
			Firing:         st.Firing,
			Fired:          st.Fired,
		})
	}
	snap.Healthy = snap.TargetsUp == snap.Targets && !firing
	line, err := json.Marshal(snap)
	if err != nil {
		m.jsonlErr = err
		return
	}
	if _, err := m.cfg.JSONL.Write(append(line, '\n')); err != nil {
		m.jsonlErr = err
	}
}

// Healthy reports the fleet verdict behind /health: every target up on
// the latest round and no burn-rate alert firing. The detail map names
// the offenders.
func (m *Monitor) Healthy() (bool, map[string]string) {
	detail := make(map[string]string)
	m.mu.Lock()
	if m.scrapes == 0 {
		detail["fleet"] = "no scrape completed yet"
	}
	for name, e := range m.perr {
		if e != "" {
			detail["target:"+name] = e
		}
	}
	m.mu.Unlock()
	for _, st := range m.engine.Status() {
		if st.Firing {
			detail["slo:"+st.Name] = fmt.Sprintf("burn-rate alert firing (sli %.4f, objective %.4f)", st.SLI, st.Objective)
		}
	}
	return len(detail) == 0, detail
}

// Handler serves the monitor's HTTP surface:
//
//	/metrics  own families (build info, SLO states, scrape meta) followed
//	          by the fleet rollup; the monitor's families win collisions
//	/health   200 {"healthy":true} when all targets scraped and no alert
//	          is firing, else 503 with the offender map
//	/         the terminal dashboard as plain text
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := m.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		healthy, detail := m.Healthy()
		w.Header().Set("Content-Type", "application/json")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(struct {
			Healthy bool              `json:"healthy"`
			Detail  map[string]string `json:"detail,omitempty"`
		}{healthy, detail})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, m.Dashboard())
	})
	return mux
}

// WriteMetrics renders the combined exposition: the monitor's own
// registry first, then the fleet rollup minus any family the monitor
// itself exports (own wins, so e.g. the monitor's build info is not
// summed with the nodes').
func (m *Monitor) WriteMetrics(w io.Writer) error {
	if err := m.reg.WritePrometheus(w); err != nil {
		return err
	}
	mg := m.latest()
	if mg == nil {
		return nil
	}
	return mg.write(w, m.ownFams)
}

// Dashboard renders the fleet's state as a fixed-width text block: one
// header line, one line per target, one per SLO.
func (m *Monitor) Dashboard() string {
	var b strings.Builder
	m.mu.Lock()
	at, up, scrapes := m.lastAt, m.up, m.scrapes
	errs := make(map[string]string, len(m.perr))
	for k, v := range m.perr {
		errs[k] = v
	}
	m.mu.Unlock()

	healthy, _ := m.Healthy()
	verdict := "HEALTHY"
	if !healthy {
		verdict = "DEGRADED"
	}
	if scrapes == 0 {
		fmt.Fprintf(&b, "wanac fleet — no scrape yet (%d targets)\n", len(m.cfg.Targets))
		return b.String()
	}
	fmt.Fprintf(&b, "wanac fleet — %s — %d/%d targets up — scraped %s\n",
		verdict, up, len(m.cfg.Targets), at.Format(time.RFC3339))

	names := make([]string, 0, len(m.cfg.Targets))
	for _, t := range m.cfg.Targets {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	addr := make(map[string]string, len(m.cfg.Targets))
	for _, t := range m.cfg.Targets {
		addr[t.Name] = t.Addr
	}
	for _, name := range names {
		state := "up"
		if e := errs[name]; e != "" {
			state = "DOWN: " + e
		}
		fmt.Fprintf(&b, "  target %-12s %-21s %s\n", name, addr[name], state)
	}
	for _, st := range m.engine.Status() {
		alert := "ok"
		if st.Firing {
			alert = "FIRING"
		} else if st.Fired > 0 {
			alert = fmt.Sprintf("ok (fired %d)", st.Fired)
		}
		fmt.Fprintf(&b, "  slo %-24s objective %5.1f%%  sli %6.2f%%  burn %5.2f/%5.2f  budget %4.0f%%  %s\n",
			st.Name, st.Objective*100, st.SLI*100, st.FastBurn, st.SlowBurn,
			st.BudgetConsumed*100, alert)
	}
	return b.String()
}
