package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wanac/internal/telemetry"
)

// node is a fake acnode for scrape tests: a real telemetry registry
// served over a real HTTP listener, so the monitor exercises the same
// write→parse→merge path it runs against a deployment.
type node struct {
	reg *telemetry.Registry
	srv *httptest.Server
}

func newNode(t *testing.T) *node {
	t.Helper()
	n := &node{reg: telemetry.NewRegistry()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if err := n.reg.WritePrometheus(w); err != nil {
			t.Errorf("write exposition: %v", err)
		}
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *node) target(name string) Target {
	return Target{Name: name, Addr: strings.TrimPrefix(n.srv.URL, "http://")}
}

func scrape(t *testing.T, m *Monitor) {
	t.Helper()
	if err := m.ScrapeOnce(context.Background()); err != nil {
		t.Fatalf("ScrapeOnce: %v", err)
	}
}

// TestRevocationHistogramRollupExact is the acceptance criterion from
// the issue: acmon's fleet rollup of
// wanac_manager_revocation_propagation_seconds must match the per-node
// expositions exactly — every merged cumulative bucket equals the sum
// of the nodes' buckets, with no estimation step in between.
func TestRevocationHistogramRollupExact(t *testing.T) {
	a, b := newNode(t), newNode(t)
	const fam = "wanac_manager_revocation_propagation_seconds"
	ha := a.reg.Histogram(fam, "Propagation lag.", nil)
	hb := b.reg.Histogram(fam, "Propagation lag.", nil)
	for _, v := range []float64{0.001, 0.004, 0.3, 2.5, 40} {
		ha.Observe(v)
	}
	for _, v := range []float64{0.002, 0.3, 0.31, 100} {
		hb.Observe(v)
	}

	m := New(Config{Targets: []Target{a.target("a"), b.target("b")}, Te: 30 * time.Second})
	scrape(t, m)

	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	merged, err := telemetry.ParseMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-exported exposition does not parse: %v", err)
	}
	got, err := merged.HistogramFrom(fam)
	if err != nil {
		t.Fatal(err)
	}
	want, err := telemetry.MergeHistograms(ha.Snapshot(), hb.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("rollup count/sum = %d/%g, want %d/%g", got.Count, got.Sum, want.Count, want.Sum)
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("rollup has %d buckets, want %d", len(got.Counts), len(want.Counts))
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d = %d, want %d (exact rollup violated)", i, got.Counts[i], want.Counts[i])
		}
	}
}

// TestGaugeFoldPolicies pins the per-family gauge folds: effective Te
// takes the fleet max, process start time the min, and plain gauges sum.
func TestGaugeFoldPolicies(t *testing.T) {
	a, b := newNode(t), newNode(t)
	a.reg.Gauge("wanac_manager_effective_te_seconds", "Te.").Set(30)
	b.reg.Gauge("wanac_manager_effective_te_seconds", "Te.").Set(120)
	a.reg.Gauge("wanac_process_start_time_seconds", "Start.").Set(1000)
	b.reg.Gauge("wanac_process_start_time_seconds", "Start.").Set(2000)
	a.reg.Gauge("wanac_host_cache_entries", "Entries.").Set(7)
	b.reg.Gauge("wanac_host_cache_entries", "Entries.").Set(5)

	m := New(Config{Targets: []Target{a.target("a"), b.target("b")}})
	scrape(t, m)

	mg := m.latest()
	for _, tc := range []struct {
		series string
		want   float64
	}{
		{"wanac_manager_effective_te_seconds", 120},
		{"wanac_process_start_time_seconds", 1000},
		{"wanac_host_cache_entries", 12},
	} {
		if got := mg.sum(tc.series, nil); got != tc.want {
			t.Errorf("%s folded to %g, want %g", tc.series, got, tc.want)
		}
	}
}

// TestOwnFamiliesWinCollisions: the nodes also export wanac_build_info
// and wanac_process_start_time_seconds; the re-export must carry the
// monitor's own single sample for its families, not a fleet fold.
func TestOwnFamiliesWinCollisions(t *testing.T) {
	a, b := newNode(t), newNode(t)
	telemetry.RegisterBuildInfo(a.reg)
	telemetry.RegisterBuildInfo(b.reg)

	m := New(Config{Targets: []Target{a.target("a"), b.target("b")}})
	scrape(t, m)

	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.ParseMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-exported exposition does not parse: %v", err)
	}
	infos := 0
	for _, s := range parsed.Samples {
		if s.Name == "wanac_build_info" {
			infos++
			if s.Value != 1 {
				t.Errorf("wanac_build_info = %g, want the monitor's own 1 (nodes' copies excluded)", s.Value)
			}
		}
	}
	if infos != 1 {
		t.Errorf("re-export carries %d wanac_build_info samples, want exactly the monitor's own", infos)
	}
}

// TestFleetSLOAndHealth drives the monitor with a fake clock: a healthy
// fleet answers /health 200; sustained all-bad checks push the fleet
// check-availability burn rate over both windows and /health flips to
// 503 naming the firing SLO.
func TestFleetSLOAndHealth(t *testing.T) {
	n := newNode(t)
	checks := n.reg.CounterVec("wanac_host_checks_total", "Checks.", "outcome")
	allowed := checks.With("allowed")
	defaulted := checks.With("default_allowed")
	allowed.Add(1000)

	now := time.Unix(1e9, 0)
	m := New(Config{
		Targets: []Target{n.target("h0")},
		Now:     func() time.Time { return now },
	})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	scrape(t, m)
	if code, body := get("/health"); code != http.StatusOK {
		t.Fatalf("healthy fleet /health = %d: %s", code, body)
	}

	// 30 minutes of pure default-allow traffic: burn 100× on a 99%
	// objective, far past the 14.4/6 thresholds on both alert windows.
	for i := 0; i < 60; i++ {
		now = now.Add(30 * time.Second)
		defaulted.Add(500)
		scrape(t, m)
	}
	code, body := get("/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("burning fleet /health = %d, want 503: %s", code, body)
	}
	if !strings.Contains(body, "slo:check-availability") {
		t.Fatalf("/health does not name the firing SLO: %s", body)
	}

	// The exposition reports the firing alert and parses strictly.
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if _, err := telemetry.ParseMetrics(strings.NewReader(metrics)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	want := `wanac_slo_alert_firing{slo="check-availability"} 1`
	if !strings.Contains(metrics, want) {
		t.Fatalf("/metrics missing %q", want)
	}
	if !strings.Contains(m.Dashboard(), "FIRING") {
		t.Fatalf("dashboard does not show the firing alert:\n%s", m.Dashboard())
	}
}

// TestScrapeFailureDegrades: a dead target flips /health to 503 and
// shows up in targets_up and the per-target scrape error counters, but
// the round still merges the live targets.
func TestScrapeFailureDegrades(t *testing.T) {
	live := newNode(t)
	live.reg.Counter("wanac_host_checks_seen_total", "Seen.").Add(3)
	dead := newNode(t)
	deadTarget := dead.target("dead")
	dead.srv.Close()

	m := New(Config{Targets: []Target{live.target("live"), deadTarget}})
	if err := m.ScrapeOnce(context.Background()); err != nil {
		t.Fatalf("partial round should not error: %v", err)
	}
	healthy, detail := m.Healthy()
	if healthy {
		t.Fatal("fleet with a dead target reports healthy")
	}
	if _, ok := detail["target:dead"]; !ok {
		t.Fatalf("health detail does not name the dead target: %v", detail)
	}
	if got := m.latest().sum("wanac_host_checks_seen_total", nil); got != 3 {
		t.Fatalf("live target's families not merged: got %g", got)
	}

	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wanac_fleet_targets_up 1") {
		t.Fatalf("exposition missing wanac_fleet_targets_up 1:\n%s", out)
	}
	if !strings.Contains(out, `wanac_fleet_scrapes_total{target="dead",outcome="error"} 1`) {
		t.Fatalf("exposition missing dead target's error counter:\n%s", out)
	}
	if m.Dashboard() == "" || !strings.Contains(m.Dashboard(), "DOWN") {
		t.Fatalf("dashboard does not flag the dead target:\n%s", m.Dashboard())
	}
}

// TestJSONLSnapshots: every scrape appends one parseable JSON line with
// the fleet verdict and per-SLO state.
func TestJSONLSnapshots(t *testing.T) {
	n := newNode(t)
	n.reg.CounterVec("wanac_host_checks_total", "Checks.", "outcome").With("allowed").Add(10)

	var out bytes.Buffer
	m := New(Config{Targets: []Target{n.target("h0")}, JSONL: &out})
	scrape(t, m)
	scrape(t, m)

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for _, line := range lines {
		var snap struct {
			Healthy   bool `json:"healthy"`
			Targets   int  `json:"targets"`
			TargetsUp int  `json:"targets_up"`
			SLO       []struct {
				Name string  `json:"name"`
				SLI  float64 `json:"sli"`
			} `json:"slo"`
		}
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if !snap.Healthy || snap.TargetsUp != 1 || snap.Targets != 1 {
			t.Fatalf("unexpected snapshot: %s", line)
		}
		if len(snap.SLO) == 0 {
			t.Fatalf("snapshot has no SLO entries: %s", line)
		}
	}
}

// TestMergedLabeledSeries: series merge per full label set — same
// labels sum across nodes, different label values stay distinct.
func TestMergedLabeledSeries(t *testing.T) {
	a, b := newNode(t), newNode(t)
	av := a.reg.CounterVec("wanac_transport_lane_drops_total", "Drops.", "lane")
	bv := b.reg.CounterVec("wanac_transport_lane_drops_total", "Drops.", "lane")
	av.With("bulk").Add(4)
	av.With("high").Add(1)
	bv.With("bulk").Add(6)

	m := New(Config{Targets: []Target{a.target("a"), b.target("b")}})
	scrape(t, m)
	mg := m.latest()
	byLane := func(lane string) float64 {
		return mg.sum("wanac_transport_lane_drops_total", func(s *series) bool {
			return s.label("lane") == lane
		})
	}
	if got := byLane("bulk"); got != 10 {
		t.Errorf("bulk drops = %g, want 10", got)
	}
	if got := byLane("high"); got != 1 {
		t.Errorf("high drops = %g, want 1", got)
	}
}

// TestTypeConflictRejected: a family that one node declares counter and
// another gauge poisons the merge with a clear error instead of folding
// nonsense.
func TestTypeConflictRejected(t *testing.T) {
	mg := newMerged()
	one, err := telemetry.ParseMetrics(strings.NewReader(
		"# TYPE wanac_thing counter\nwanac_thing 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	two, err := telemetry.ParseMetrics(strings.NewReader(
		"# TYPE wanac_thing gauge\nwanac_thing 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.add(one); err != nil {
		t.Fatal(err)
	}
	if err := mg.add(two); err == nil {
		t.Fatal("conflicting family types merged without error")
	}
}

// TestRunLoopScrapes: Run scrapes immediately and on the interval until
// the context ends.
func TestRunLoopScrapes(t *testing.T) {
	n := newNode(t)
	m := New(Config{Targets: []Target{n.target("h0")}, Every: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if err := m.Run(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
	m.mu.Lock()
	got := m.scrapes
	m.mu.Unlock()
	if got < 2 {
		t.Fatalf("Run completed %d scrape rounds, want >= 2", got)
	}
}

// TestDashboardBeforeFirstScrape renders a stable placeholder rather
// than a zero-time header.
func TestDashboardBeforeFirstScrape(t *testing.T) {
	n := newNode(t)
	m := New(Config{Targets: []Target{n.target("h0")}})
	if got := m.Dashboard(); !strings.Contains(got, "no scrape yet") {
		t.Fatalf("pre-scrape dashboard: %q", got)
	}
	if healthy, _ := m.Healthy(); healthy {
		t.Fatal("monitor healthy before any scrape")
	}
}

func ExampleMonitor_Dashboard() {
	// Not runnable against live nodes in an example; shown for shape.
	fmt.Println("wanac fleet — HEALTHY — 3/3 targets up")
	// Output: wanac fleet — HEALTHY — 3/3 targets up
}
