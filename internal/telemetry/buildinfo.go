package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterBuildInfo registers the standard process-identity families
// every wanac binary exposes on /metrics:
//
//	wanac_build_info{version,go_version} 1
//	wanac_process_start_time_seconds     <unix seconds>
//
// version comes from the module build info when available ("(devel)" or
// a VCS-stamped version) and "unknown" otherwise. The start time is the
// first registration on this registry; re-registering is a no-op thanks
// to get-or-create semantics, so shared registries stay stable across
// subsystem re-instrumentation.
func RegisterBuildInfo(r *Registry) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	r.GaugeVec("wanac_build_info",
		"Build identity of this process; value is always 1.",
		"version", "go_version").With(version, runtime.Version()).Set(1)
	g := r.Gauge("wanac_process_start_time_seconds",
		"Unix time this process's registry first registered build info.")
	if g.Value() == 0 {
		g.Set(float64(time.Now().UnixNano()) / 1e9)
	}
}
