package telemetry

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSpanWriterCloseWhileEmitting closes a SpanWriter while eight
// goroutines are mid-stream. The contract under test: no panic, no torn
// JSONL (everything written parses), every span is either written or
// counted as a drop, and the test leaks no goroutines. Run under -race
// in CI, this is the span-recorder lifecycle check.
func TestSpanWriterCloseWhileEmitting(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const emitters, perEmitter = 8, 200
	var buf bytes.Buffer // all access serialized by the writer's mutex
	w := NewSpanWriter(&buf)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			for n := 0; n < perEmitter; n++ {
				w.RecordSpan(Span{Trace: uint64(id*perEmitter + n), Node: "h0", Kind: "round"})
			}
		}(i)
	}
	close(start)
	w.Close() // races the emitters on purpose
	wg.Wait()

	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("stream torn by concurrent close: %v", err)
	}
	if got := len(spans) + w.Errors(); got != emitters*perEmitter {
		t.Fatalf("written %d + dropped %d = %d spans, want %d accounted for",
			len(spans), w.Errors(), got, emitters*perEmitter)
	}

	// Post-close behavior: drops are counted, nothing is written, and a
	// second Close is a no-op.
	before, errsBefore := buf.Len(), w.Errors()
	w.RecordSpan(Span{Trace: 1, Node: "h0", Kind: "decision"})
	if buf.Len() != before {
		t.Error("RecordSpan after Close wrote to the stream")
	}
	if w.Errors() != errsBefore+1 {
		t.Errorf("post-close span not counted: errors %d, want %d", w.Errors(), errsBefore+1)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	// No goroutine leaks: everything the test started must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpanWriterCloseBeforeUse pins the degenerate order: Close first,
// then record. Every span must surface as a counted drop.
func TestSpanWriterCloseBeforeUse(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	w.Close()
	for i := 0; i < 3; i++ {
		w.RecordSpan(Span{Trace: uint64(i)})
	}
	if buf.Len() != 0 {
		t.Errorf("closed writer produced output: %q", buf.String())
	}
	if w.Errors() != 3 {
		t.Errorf("errors = %d, want 3", w.Errors())
	}
}
