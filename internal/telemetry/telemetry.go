// Package telemetry is a dependency-free metrics layer shared by the
// simulator and the live daemons: a registry of named metric families
// (counters, gauges, fixed-bucket histograms, optionally labeled), a
// Prometheus text-format exposition writer (prometheus.go), and causal
// check-round spans exported as JSONL (span.go).
//
// Design constraints, in order:
//
//  1. Zero allocations on the hot path. Incrementing a counter or
//     observing a histogram sample touches only atomics. Callers resolve
//     labeled children (With) once at setup and hold the returned
//     handles; With itself takes the family lock and may allocate.
//  2. One taxonomy for simulated and live runs. internal/sim feeds the
//     same families that cmd/acnode serves on /metrics, so a dashboard
//     built against the simulator works unchanged against a deployment.
//  3. No dependencies beyond the standard library.
//
// Registration is get-or-create: asking twice for the same family (same
// name, kind, and label keys) returns the same handles, so independent
// subsystems can share families without coordinating initialization.
// Conflicting re-registration (same name, different kind or labels) is a
// programming error and panics.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them for exposition.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with a fixed label-key set. Children are
// keyed by their label values.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
	// collect, if set, replaces children at exposition time: the family
	// is a snapshot set whose samples are regenerated on every scrape
	// (used for state gauges like per-peer connection state, where the
	// set of label values changes over time).
	collect func(emit func(labelValues []string, v float64))
}

// child is one sample series within a family. Exactly one of the value
// fields is set, matching the family kind.
type child struct {
	values []string // label values, parallel to family.labels
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64 // func-backed counter or gauge
	hist   *Histogram
	histFn func() HistogramSnapshot // func-backed histogram
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("telemetry: invalid label name %q for metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, kind, f.kind))
		}
		if !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	if kind == kindHistogram {
		f.buckets = normalizeBuckets(buckets)
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childKey joins label values with a byte that cannot appear in UTF-8
// label values unescaped-ambiguously enough for a map key.
func childKey(values []string) string {
	return strings.Join(values, "\x00")
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := childKey(values)
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.ctr = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Counter --------------------------------------------------------------

// A Counter is a monotonically increasing value. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family with labels. Resolve children with
// With at setup time and hold the handles; With locks and may allocate.
type CounterVec struct {
	f *family
}

// With returns the counter for the given label values (created on first
// use).
func (v CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).ctr
}

// WithFunc installs a function-backed counter sample for the given label
// values: the function is called at exposition time and must return a
// monotonically non-decreasing value. Re-installing for the same label
// values replaces the function (the latest closure wins, so re-built
// worlds can re-instrument the same registry).
func (v CounterVec) WithFunc(fn func() float64, labelValues ...string) {
	c := v.f.child(labelValues)
	v.f.mu.Lock()
	c.fn = fn
	v.f.mu.Unlock()
}

// Counter returns (creating if needed) an unlabeled counter family with
// a single sample.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec returns (creating if needed) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// CounterFunc registers an unlabeled counter whose value is read from fn
// at exposition time. Use it to re-export counters a subsystem already
// maintains (e.g. transport send/drop totals) without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.CounterVec(name, help).WithFunc(fn)
}

// Gauge ----------------------------------------------------------------

// A Gauge is a value that can go up and down. All methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct {
	f *family
}

// With returns the gauge for the given label values.
func (v GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).gauge
}

// WithFunc installs a function-backed gauge sample for the given label
// values, read at exposition time. Re-installing replaces the function.
func (v GaugeVec) WithFunc(fn func() float64, labelValues ...string) {
	c := v.f.child(labelValues)
	v.f.mu.Lock()
	c.fn = fn
	v.f.mu.Unlock()
}

// Gauge returns (creating if needed) an unlabeled gauge family with a
// single sample.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec returns (creating if needed) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers an unlabeled gauge whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.GaugeVec(name, help).WithFunc(fn)
}

// GaugeSet registers a gauge family whose full sample set is regenerated
// on every scrape by collect, which must call emit once per sample with
// len(labels) label values. Use it when the label-value universe changes
// over time (per-peer connection state, per-app freeze state).
func (r *Registry) GaugeSet(name, help string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	f := r.family(name, help, kindGauge, labels, nil)
	f.mu.Lock()
	f.collect = collect
	f.mu.Unlock()
}

// Histogram ------------------------------------------------------------

// A Histogram counts observations into fixed buckets and tracks their
// sum. Observe is safe for concurrent use and allocation-free.
type Histogram struct {
	upper  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	out := b[:0]
	for _, u := range b {
		if math.IsInf(u, +1) || math.IsNaN(u) {
			continue // +Inf is implicit
		}
		if len(out) > 0 && out[len(out)-1] == u {
			continue
		}
		out = append(out, u)
	}
	return out
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets.
// Counts has one entry per upper bound plus a final overflow (+Inf)
// entry; entries are per-bucket, not cumulative.
type HistogramSnapshot struct {
	Upper  []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the current bucket counts. Concurrent Observe calls
// may straddle the copy; totals are consistent to within in-flight
// observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Upper:  h.upper,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket containing the target rank, matching
// the estimate a Prometheus histogram_quantile() would produce. Samples
// in the overflow bucket clamp to the largest finite bound. Returns 0
// for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Counts {
		lower := 0.0
		if i > 0 {
			lower = s.Upper[i-1]
		}
		next := cum + float64(n)
		if next >= rank {
			if i == len(s.Upper) { // overflow bucket
				if len(s.Upper) == 0 {
					return 0
				}
				return s.Upper[len(s.Upper)-1]
			}
			upper := s.Upper[i]
			if n == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-cum)/float64(n)
		}
		cum = next
	}
	if len(s.Upper) == 0 {
		return 0
	}
	return s.Upper[len(s.Upper)-1]
}

// HistogramSummary is the JSON-friendly digest recorded into BENCH.json
// and available to tests.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the histogram and digests it to count/sum/p50/p95/p99.
func (h *Histogram) Summary() HistogramSummary {
	s := h.Snapshot()
	return HistogramSummary{
		Count: s.Count,
		Sum:   s.Sum,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// HistogramVec is a histogram family with labels. All children share the
// family's bucket layout.
type HistogramVec struct {
	f *family
}

// With returns the histogram for the given label values.
func (v HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).hist
}

// Histogram returns (creating if needed) an unlabeled histogram family
// with a single sample series. buckets are ascending upper bounds in the
// metric's unit; nil means DefBuckets. The bucket layout is fixed by the
// first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec returns (creating if needed) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// HistogramFunc registers an unlabeled histogram whose full snapshot is
// read from fn at exposition time. Use it to re-export bucketed counts a
// subsystem already maintains with its own atomics (e.g. the transport's
// frames-per-flush buckets) without double counting. fn must return a
// snapshot whose Counts has len(Upper)+1 entries (per-bucket, last slot is
// overflow); buckets should match the Upper bounds fn reports.
// Re-registering replaces the function.
func (r *Registry) HistogramFunc(name, help string, buckets []float64, fn func() HistogramSnapshot) {
	f := r.family(name, help, kindHistogram, nil, buckets)
	c := f.child(nil)
	f.mu.Lock()
	c.histFn = fn
	f.mu.Unlock()
}

// Bucket helpers -------------------------------------------------------

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// DefBuckets is the default layout for latency histograms in seconds:
// 100µs to ~26s, doubling. Wide enough for LAN RTTs, simulated WAN
// checks (tens of ms to seconds with retries), and R-round timeouts.
var DefBuckets = ExpBuckets(100e-6, 2, 18)
