package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"wanac/internal/trace"
	"wanac/internal/wire"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("wanac_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("wanac_test_total", "other help"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := reg.Gauge("wanac_test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	v := reg.CounterVec("wanac_test_labeled_total", "help", "outcome")
	a, b := v.With("allowed"), v.With("denied")
	if a == b {
		t.Fatal("distinct label values shared a child")
	}
	if v.With("allowed") != a {
		t.Fatal("With not idempotent")
	}
	a.Inc()
	if a.Value() != 1 || b.Value() != 0 {
		t.Fatalf("labeled counters = %d,%d, want 1,0", a.Value(), b.Value())
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wanac_conflict_total", "help")
	mustPanic(t, "kind conflict", func() { reg.Gauge("wanac_conflict_total", "help") })
	reg.CounterVec("wanac_labels_total", "help", "a")
	mustPanic(t, "label conflict", func() { reg.CounterVec("wanac_labels_total", "help", "b") })
	mustPanic(t, "bad name", func() { reg.Counter("0bad", "help") })
	mustPanic(t, "label arity", func() { reg.CounterVec("wanac_labels_total", "help", "a").With("x", "y") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("wanac_test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []uint64{2, 1, 1, 1} // <=0.1, <=1, <=10, +Inf
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-102.6) > 1e-9 {
		t.Fatalf("sum = %v, want 102.6", s.Sum)
	}
	// p50: rank 2.5 falls in the first bucket (cum 2 < 2.5 is false? cum
	// of bucket 0 is 2, rank 2.5 > 2 so second bucket), interpolated in
	// (0.1, 1].
	if q := s.Quantile(0.5); q < 0.1 || q > 1 {
		t.Fatalf("p50 = %v, want within (0.1, 1]", q)
	}
	// p99 lands in the overflow bucket and clamps to the top bound.
	if q := s.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %v, want clamp to 10", q)
	}
	sum := h.Summary()
	if sum.Count != 5 || sum.P50 != s.Quantile(0.5) || sum.P99 != 10 {
		t.Fatalf("summary mismatch: %+v", sum)
	}

	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestBucketHelpers(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	n := normalizeBuckets([]float64{5, 1, 5, math.Inf(1), 3})
	want = []float64{1, 3, 5}
	if len(n) != len(want) {
		t.Fatalf("normalizeBuckets = %v, want %v", n, want)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("normalizeBuckets = %v, want %v", n, want)
		}
	}
}

func TestWritePrometheusAndParse(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wanac_checks_total", "Completed checks.").Add(7)
	v := reg.CounterVec("wanac_outcomes_total", "By outcome.", "outcome")
	v.With("allowed").Add(3)
	v.With("denied").Inc()
	reg.Gauge("wanac_cache_entries", "Entries with \"quotes\" and \\slashes\\.").Set(12)
	reg.GaugeFunc("wanac_uptime_ratio", "Func-backed.", func() float64 { return 0.25 })
	h := reg.Histogram("wanac_latency_seconds", "Latency.\nMultiline help.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	reg.GaugeSet("wanac_peer_state", "Peer states.", []string{"peer", "state"}, func(emit func([]string, float64)) {
		emit([]string{"m1", "up"}, 1)
		emit([]string{"m0", "backoff"}, 1)
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	types, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, out)
	}
	wantTypes := map[string]string{
		"wanac_checks_total":    "counter",
		"wanac_outcomes_total":  "counter",
		"wanac_cache_entries":   "gauge",
		"wanac_uptime_ratio":    "gauge",
		"wanac_latency_seconds": "histogram",
		"wanac_peer_state":      "gauge",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Fatalf("family %s type = %q, want %q\n%s", name, types[name], typ, out)
		}
	}
	for _, line := range []string{
		"wanac_checks_total 7",
		`wanac_outcomes_total{outcome="allowed"} 3`,
		`wanac_outcomes_total{outcome="denied"} 1`,
		"wanac_uptime_ratio 0.25",
		`wanac_latency_seconds_bucket{le="0.01"} 1`,
		`wanac_latency_seconds_bucket{le="0.1"} 2`,
		`wanac_latency_seconds_bucket{le="+Inf"} 3`,
		"wanac_latency_seconds_count 3",
		`wanac_peer_state{peer="m0",state="backoff"} 1`,
		`wanac_peer_state{peer="m1",state="up"} 1`,
		`# HELP wanac_latency_seconds Latency.\nMultiline help.`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing line %q:\n%s", line, out)
		}
	}
	// Families must be sorted and label-escaped help must stay one line.
	if strings.Count(out, "\n# HELP") != strings.Count(out, "# HELP")-1 {
		t.Fatalf("HELP lines not each on their own line:\n%s", out)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"wanac_orphan_total 1",                          // sample without TYPE
		"# TYPE wanac_x bogus",                          // unknown type
		"# TYPE wanac_x counter\nwanac_x notafloat",     // bad value
		"# TYPE wanac_x counter\nwanac_x{l=\"v\" 1",     // unterminated labels
		"# TYPE wanac_x counter\nwanac_x{0bad=\"v\"} 1", // bad label name
		"# TYPE wanac_x counter\nwanac_x{l=\"\\q\"} 1",  // bad escape
		"# TYPE wanac_x counter\n# TYPE wanac_x gauge",  // re-declared
		"# TYPE 0bad counter",                           // bad family name
	}
	for _, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", in)
		}
	}
	// Valid corner cases must pass.
	ok := "# some comment\n\n# TYPE wanac_x counter\nwanac_x +Inf\nwanac_x{a=\"b\\\"c\"} 2 12345\n"
	if _, err := ParseText(strings.NewReader(ok)); err != nil {
		t.Errorf("ParseText rejected valid input: %v", err)
	}
}

func TestConcurrentUpdatesWhileScraping(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("wanac_conc_total", "help")
	h := reg.Histogram("wanac_conc_seconds", "help", nil)
	v := reg.GaugeVec("wanac_conc_gauge", "help", "node")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := v.With(string(rune('a' + i)))
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.01)
					g.Add(1)
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseText(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("wanac_alloc_total", "help")
	g := reg.Gauge("wanac_alloc_gauge", "help")
	h := reg.Histogram("wanac_alloc_seconds", "help", nil)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		g.Add(0.5)
		h.Observe(0.003)
	}); n != 0 {
		t.Fatalf("hot path allocates %v/op, want 0", n)
	}
}

func TestEventBridge(t *testing.T) {
	reg := NewRegistry()
	col := trace.NewCollector(0)
	tr := InstrumentTracer(reg, col)
	for i := 0; i < 3; i++ {
		tr.Emit(trace.Event{Node: "h0", Type: trace.EventCacheHit})
	}
	tr.Emit(trace.Event{Node: "h0", Type: trace.EventAccessAllowed, App: wire.AppID("stocks")})
	if got := col.Count(trace.EventCacheHit); got != 3 {
		t.Fatalf("inner tracer saw %d cache hits, want 3", got)
	}
	v := reg.CounterVec("wanac_trace_events_total", "", "type")
	if got := v.With(trace.EventCacheHit.String()).Value(); got != 3 {
		t.Fatalf("bridge counted %d cache hits, want 3", got)
	}
	if got := v.With(trace.EventAccessAllowed.String()).Value(); got != 1 {
		t.Fatalf("bridge counted %d allowed, want 1", got)
	}
	// Steady-state Emit (counter already cached) must not allocate
	// beyond what the inner tracer does; use a Nop inner to isolate.
	nop := InstrumentTracer(reg, trace.Nop{})
	ev := trace.Event{Node: "h0", Type: trace.EventCacheHit}
	nop.Emit(ev)
	if n := testing.AllocsPerRun(100, func() { nop.Emit(ev) }); n != 0 {
		t.Fatalf("bridge Emit allocates %v/op, want 0", n)
	}
}

func TestSpanWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	w.RecordSpan(Span{Trace: 42, Node: "h0", Kind: "round", Round: 1, Nonce: 42, Time: base})
	w.RecordSpan(Span{Trace: 42, Node: "m0", Kind: "query", Peer: "h0", Note: "granted", Time: base})
	w.RecordSpan(Span{Trace: 7, Node: "h0", Kind: "decision", Note: "allowed", DurNs: 1500, Time: base})
	if w.Errors() != 0 {
		t.Fatalf("span writer errors = %d", w.Errors())
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("read %d spans, want 3", len(spans))
	}
	if spans[0].Trace != 42 || spans[0].Kind != "round" || spans[1].Peer != "h0" || spans[2].DurNs != 1500 {
		t.Fatalf("round trip mismatch: %+v", spans)
	}

	var b SpanBuffer
	for _, s := range spans {
		b.RecordSpan(s)
	}
	if got := b.ByTrace(42); len(got) != 2 {
		t.Fatalf("ByTrace(42) = %d spans, want 2", len(got))
	}
	if got := b.Spans(); len(got) != 3 {
		t.Fatalf("Spans() = %d, want 3", len(got))
	}
}
