package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fixtureRegistry builds a registry exercising every family kind and
// every formatting edge the writer has: labeled and unlabeled counters,
// func-backed and collector-backed gauges, histograms, quote/backslash
// escaping in label values and help text, and non-finite sample values.
func fixtureRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("wanac_fuzz_checks_total", "Completed checks.").Add(7)
	v := reg.CounterVec("wanac_fuzz_outcomes_total", "By outcome.", "outcome")
	v.With("allowed").Add(3)
	v.With(`quoted"value`).Inc()
	v.With("multi\nline").Inc()
	reg.Gauge("wanac_fuzz_entries", "Help with \"quotes\" and \\slashes\\.\nSecond line.").Set(12.5)
	reg.GaugeFunc("wanac_fuzz_inf_ratio", "Non-finite.", func() float64 { return math.Inf(1) })
	reg.GaugeFunc("wanac_fuzz_nan_ratio", "Non-finite.", func() float64 { return math.NaN() })
	h := reg.Histogram("wanac_fuzz_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, o := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(o)
	}
	reg.GaugeSet("wanac_fuzz_peer_state", "Peer states.", []string{"peer", "state"}, func(emit func([]string, float64)) {
		emit([]string{"m1", "up"}, 1)
		emit([]string{"m0", "backoff"}, 1)
	})
	return reg
}

// FuzzParseText throws arbitrary input at the exposition parser. The
// invariants: never panic, and parsing is deterministic — the same
// bytes always yield the same family-type map or the same rejection.
// The seed corpus is the writer's own output (the input the parser
// exists to validate) plus the known malformed shapes.
func FuzzParseText(f *testing.F) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("# TYPE wanac_x counter\nwanac_x 1\n")
	f.Add("# TYPE wanac_h histogram\nwanac_h_bucket{le=\"+Inf\"} 0\nwanac_h_sum 0\nwanac_h_count 0\n")
	f.Add("# some bare comment\n\n# TYPE wanac_x gauge\nwanac_x{a=\"b\\\"c\"} 2 12345\n")
	f.Add("wanac_orphan_total 1")
	f.Add("# TYPE wanac_x bogus")
	f.Add("# TYPE wanac_x counter\nwanac_x{l=\"v\" 1")
	f.Add("# TYPE wanac_x counter\nwanac_x{l=\"\\q\"} 1")
	f.Add("# TYPE wanac_x counter\nwanac_x +Inf\nwanac_x NaN\nwanac_x -Inf\n")

	f.Fuzz(func(t *testing.T, in string) {
		types, err := ParseText(strings.NewReader(in))
		again, err2 := ParseText(strings.NewReader(in))
		if (err == nil) != (err2 == nil) {
			t.Fatalf("parse not deterministic: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		if len(types) != len(again) {
			t.Fatalf("parse not deterministic: %d vs %d families", len(types), len(again))
		}
		for name, typ := range types {
			if again[name] != typ {
				t.Fatalf("parse not deterministic for %q: %q vs %q", name, typ, again[name])
			}
			// Everything the parser admits must satisfy its own rules.
			if !validName(name) {
				t.Fatalf("parser admitted invalid family name %q", name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("parser admitted unknown type %q for %q", typ, name)
			}
		}
	})
}

// FuzzParseMetrics pins the escape round trip on the full sample parser:
// any label value — backslashes, quotes, embedded newlines — survives
// write→ParseMetrics unchanged, and re-writing the decoded value is a
// fixed point (escapeLabel and unescapeLabel are exact inverses on the
// writer's image). The audit reason labels ride this path, so a lossy
// escape here would silently corrupt provenance counters.
func FuzzParseMetrics(f *testing.F) {
	for _, s := range []string{
		"", "plain", `back\slash`, `quo"te`, "new\nline",
		`trailing\`, "mix \\ \" \n end", `\n`, `\\" literal escapes`,
	} {
		f.Add(s, "Help for "+s)
	}
	f.Fuzz(func(t *testing.T, value, help string) {
		write := func(v string) string {
			reg := NewRegistry()
			reg.CounterVec("wanac_fuzz_roundtrip_total", help, "reason").With(v).Inc()
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		}
		first := write(value)
		m, err := ParseMetrics(strings.NewReader(first))
		if err != nil {
			t.Fatalf("writer output rejected by ParseMetrics: %v\n%q", err, first)
		}
		var got string
		found := false
		for _, s := range m.Samples {
			if s.Name != "wanac_fuzz_roundtrip_total" {
				continue
			}
			if found {
				t.Fatalf("one series wrote %d samples:\n%q", len(m.Samples), first)
			}
			got, found = s.Label("reason")
		}
		if !found {
			t.Fatalf("sample lost in round trip:\n%q", first)
		}
		if got != value {
			t.Fatalf("label value %q decoded as %q", value, got)
		}
		if second := write(got); second != first {
			t.Fatalf("write→parse→write not a fixed point:\n--- first ---\n%q\n--- second ---\n%q", first, second)
		}
	})
}

// TestPrometheusWriteParseFixedPoint is the round-trip property behind
// the fuzz corpus: the writer's output always parses, the parsed
// family types match what was registered, and writing again produces
// byte-identical output (the writer sorts families and children, so
// write→parse→write is a fixed point for an unchanged registry).
func TestPrometheusWriteParseFixedPoint(t *testing.T) {
	reg := fixtureRegistry()

	var first bytes.Buffer
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	types, err := ParseText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("writer output rejected by its own parser: %v\n%s", err, first.String())
	}
	want := map[string]string{
		"wanac_fuzz_checks_total":    "counter",
		"wanac_fuzz_outcomes_total":  "counter",
		"wanac_fuzz_entries":         "gauge",
		"wanac_fuzz_inf_ratio":       "gauge",
		"wanac_fuzz_nan_ratio":       "gauge",
		"wanac_fuzz_latency_seconds": "histogram",
		"wanac_fuzz_peer_state":      "gauge",
	}
	if len(types) != len(want) {
		t.Fatalf("parsed %d families, want %d: %v", len(types), len(want), types)
	}
	for name, typ := range want {
		if types[name] != typ {
			t.Errorf("family %s parsed as %q, want %q", name, types[name], typ)
		}
	}

	var second bytes.Buffer
	if err := reg.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("writer is not a fixed point for an unchanged registry:\n--- first ---\n%s--- second ---\n%s",
			first.String(), second.String())
	}
	if _, err := ParseText(bytes.NewReader(second.Bytes())); err != nil {
		t.Errorf("second write rejected: %v", err)
	}
}
