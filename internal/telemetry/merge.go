package telemetry

import "fmt"

// MergeHistograms returns the snapshot a single histogram would report
// had it absorbed both inputs' observations: per-bucket counts add,
// totals add, sums add. Both snapshots must share the same bucket layout
// (identical Upper bounds); merging across layouts would silently
// misattribute counts, so it is an error instead. Fleet rollups (acmon)
// and cross-child aggregation (scenario SLOs) are built on this.
func MergeHistograms(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Upper) != len(b.Upper) {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(a.Upper), len(b.Upper))
	}
	for i := range a.Upper {
		if a.Upper[i] != b.Upper[i] {
			return HistogramSnapshot{}, fmt.Errorf("telemetry: merging histograms with different bucket bounds at %d: %v vs %v", i, a.Upper[i], b.Upper[i])
		}
	}
	if len(a.Counts) != len(a.Upper)+1 || len(b.Counts) != len(b.Upper)+1 {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: malformed snapshot: counts/bounds length mismatch")
	}
	out := HistogramSnapshot{
		Upper:  append([]float64(nil), a.Upper...),
		Counts: make([]uint64, len(a.Counts)),
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
	}
	for i := range out.Counts {
		out.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return out, nil
}
