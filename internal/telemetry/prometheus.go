package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with # HELP and
// # TYPE lines, children sorted by label values, histograms expanded to
// cumulative _bucket/_sum/_count series. Safe to call concurrently with
// metric updates; the output is consistent to within in-flight
// operations.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sample is one rendered series: resolved label values and value.
type sample struct {
	values []string
	v      float64
	hist   HistogramSnapshot // histogram families only
}

func (f *family) gather() []sample {
	f.mu.Lock()
	collect := f.collect
	var out []sample
	if collect == nil {
		out = make([]sample, 0, len(f.children))
		for _, c := range f.children {
			s := sample{values: c.values}
			switch {
			case c.histFn != nil:
				s.hist = c.histFn()
			case c.hist != nil:
				s.hist = c.hist.Snapshot()
			case c.fn != nil:
				s.v = c.fn()
			case c.ctr != nil:
				s.v = float64(c.ctr.Value())
			case c.gauge != nil:
				s.v = c.gauge.Value()
			}
			out = append(out, s)
		}
	}
	f.mu.Unlock()
	if collect != nil {
		collect(func(labelValues []string, v float64) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("telemetry: collector for %q emitted %d label values, want %d", f.name, len(labelValues), len(f.labels)))
			}
			out = append(out, sample{values: append([]string(nil), labelValues...), v: v})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func (f *family) write(w *bufio.Writer) error {
	samples := f.gather()
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range samples {
		if f.kind == kindHistogram {
			writeHistogram(w, f.name, f.labels, s.values, s.hist)
			continue
		}
		writeSample(w, f.name, f.labels, s.values, "", "", s.v)
	}
	return nil
}

func writeHistogram(w *bufio.Writer, name string, labels, values []string, h HistogramSnapshot) {
	cum := uint64(0)
	for i, upper := range h.Upper {
		cum += h.Counts[i]
		writeSample(w, name+"_bucket", labels, values, "le", formatFloat(upper), float64(cum))
	}
	writeSample(w, name+"_bucket", labels, values, "le", "+Inf", float64(h.Count))
	writeSample(w, name+"_sum", labels, values, "", "", h.Sum)
	writeSample(w, name+"_count", labels, values, "", "", float64(h.Count))
}

// writeSample renders one series line. extraKey/extraVal append a
// synthetic label (the histogram "le" bound) after the family labels.
func writeSample(w *bufio.Writer, name string, labels, values []string, extraKey, extraVal string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraKey != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraKey)
			w.WriteString(`="`)
			w.WriteString(extraVal)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ----------------------------------------------------------------------
// Validation parser. A deliberately strict reader for the subset of the
// text format this package emits; the golden test and the CI /metrics
// smoke step use it to fail on malformed lines and to check that
// required families are present.

// ParseText reads Prometheus text exposition and returns the declared
// type of every family (name -> "counter"|"gauge"|"histogram"|...). It
// returns an error on the first malformed line, on a sample whose family
// has no preceding # TYPE declaration, or on a sample value that does
// not parse as a float. ParseText is a validation-only view over
// ParseMetrics (parse.go), which additionally returns every sample.
func ParseText(r io.Reader) (map[string]string, error) {
	m, err := ParseMetrics(r)
	if err != nil {
		return nil, err
	}
	return m.Types, nil
}

func parseComment(line string, m *Metrics) error {
	types := m.Types
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		if prev, ok := types[name]; ok && prev != typ {
			return fmt.Errorf("metric %q re-declared as %s, was %s", name, typ, prev)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validName(fields[2]) {
			return fmt.Errorf("invalid metric name %q in HELP line", fields[2])
		}
		if len(fields) == 4 {
			m.Help[fields[2]] = fields[3]
		}
	}
	return nil
}

func parseSample(line string, types map[string]string) (Sample, error) {
	var out Sample
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name := rest[:i]
	if !validName(name) {
		return out, fmt.Errorf("invalid metric name %q", name)
	}
	out.Name = name
	rest = rest[i:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest, func(k, v string) {
			out.Labels = append(out.Labels, Label{Name: k, Value: unescapeLabel(v)})
		})
		if err != nil {
			return out, fmt.Errorf("metric %q: %w", name, err)
		}
		rest = rest[end:]
	}
	// Value (and optional timestamp, which this writer never emits).
	rest = strings.TrimPrefix(rest, " ")
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64); err != nil {
			return out, fmt.Errorf("metric %q: malformed timestamp %q", name, rest[sp+1:])
		}
	}
	v, err := parseValue(valStr)
	if err != nil {
		return out, fmt.Errorf("metric %q: malformed value %q", name, valStr)
	}
	out.Value = v
	// The sample must belong to a declared family. Histogram samples use
	// the family name plus a _bucket/_sum/_count suffix.
	base := name
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if t, ok := types[strings.TrimSuffix(name, suf)]; ok && (t == "histogram" || t == "summary") && strings.HasSuffix(name, suf) {
			base = strings.TrimSuffix(name, suf)
			break
		}
	}
	if _, ok := types[base]; !ok {
		return out, fmt.Errorf("sample %q has no preceding # TYPE declaration", name)
	}
	return out, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanLabels validates a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace. collect, if non-nil,
// receives each (name, raw value) pair; the value is still escaped.
func scanLabels(s string, collect func(name, rawValue string)) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("malformed label name in %q", s)
		}
		name := s[start:i]
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		i++ // past opening quote
		vstart := i
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("truncated escape in %q", s)
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("invalid escape \\%c in %q", s[i], s)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		if collect != nil {
			collect(name, s[vstart:i])
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validLabelName(s string) bool {
	// "le" and family labels share the metric-name charset minus ':'.
	return validName(s) && !strings.Contains(s, ":")
}
