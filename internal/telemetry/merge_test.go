package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestMergeHistogramsProperty: for random bucket layouts and random
// observation sets split across two histograms, the merged snapshot's
// quantiles equal the quantiles of one histogram that absorbed every
// observation — bucketed quantiles depend only on bucket counts, and
// merging sums bucket counts.
func TestMergeHistogramsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		nb := 1 + rng.Intn(12)
		buckets := make([]float64, nb)
		u := rng.Float64() + 0.01
		for i := range buckets {
			buckets[i] = u
			u *= 1 + rng.Float64()*3
		}
		a := newHistogram(buckets)
		b := newHistogram(buckets)
		all := newHistogram(buckets)
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			// Spread observations across buckets including overflow.
			v := rng.Float64() * buckets[nb-1] * 1.5
			if rng.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
			all.Observe(v)
		}
		merged, err := MergeHistograms(a.Snapshot(), b.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: merge failed: %v", trial, err)
		}
		want := all.Snapshot()
		if merged.Count != want.Count {
			t.Fatalf("trial %d: merged count %d, want %d", trial, merged.Count, want.Count)
		}
		if math.Abs(merged.Sum-want.Sum) > 1e-9*math.Max(1, math.Abs(want.Sum)) {
			t.Fatalf("trial %d: merged sum %v, want %v", trial, merged.Sum, want.Sum)
		}
		for i := range want.Counts {
			if merged.Counts[i] != want.Counts[i] {
				t.Fatalf("trial %d: bucket %d count %d, want %d", trial, i, merged.Counts[i], want.Counts[i])
			}
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1.0} {
			if got, want := merged.Quantile(q), want.Quantile(q); got != want {
				t.Fatalf("trial %d: merged q%v = %v, concatenated q%v = %v", trial, q, got, q, want)
			}
		}
	}
}

func TestMergeHistogramsLayoutMismatch(t *testing.T) {
	a := newHistogram([]float64{1, 2}).Snapshot()
	b := newHistogram([]float64{1, 3}).Snapshot()
	if _, err := MergeHistograms(a, b); err == nil {
		t.Fatalf("merging different bounds did not fail")
	}
	c := newHistogram([]float64{1}).Snapshot()
	if _, err := MergeHistograms(a, c); err == nil {
		t.Fatalf("merging different bucket counts did not fail")
	}
}

// Histogram edge cases the SLO math depends on -------------------------

func TestHistogramOverflowObservations(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.Observe(5)   // above top bucket
	h.Observe(500) // far above
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 2 {
		t.Fatalf("overflow bucket count = %d, want 2", s.Counts[len(s.Counts)-1])
	}
	if s.Count != 2 || s.Sum != 505 {
		t.Fatalf("count=%d sum=%v, want 2/505", s.Count, s.Sum)
	}
	// Overflow-resident quantiles clamp to the largest finite bound: the
	// histogram cannot resolve beyond its top bucket.
	if q := s.Quantile(0.99); q != 1 {
		t.Fatalf("q99 of all-overflow histogram = %v, want clamp to top bound 1", q)
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	s := newHistogram([]float64{0.1, 1}).Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty histogram q%v = %v, want 0", q, got)
		}
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		h := newHistogram(ExpBuckets(0.001, 2, 10))
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			h.Observe(rng.ExpFloat64() * 0.1)
		}
		s := h.Snapshot()
		p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
		if !(p50 <= p95 && p95 <= p99) {
			t.Fatalf("trial %d: quantiles not monotonic: p50=%v p95=%v p99=%v", trial, p50, p95, p99)
		}
	}
}

// ParseMetrics / HistogramFrom -----------------------------------------

func TestParseMetricsSamples(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("pm_requests_total", "requests", "code").With("200").Add(7)
	reg.CounterVec("pm_requests_total", "requests", "code").With(`we"ird\label` + "\n").Add(1)
	reg.Gauge("pm_temp", "temperature").Set(-3.5)
	h := reg.Histogram("pm_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseMetrics: %v\n%s", err, b.String())
	}
	if m.Types["pm_requests_total"] != "counter" || m.Types["pm_lat_seconds"] != "histogram" {
		t.Fatalf("types = %v", m.Types)
	}
	if m.Help["pm_temp"] != "temperature" {
		t.Fatalf("help = %v", m.Help)
	}
	find := func(name, labelName, labelValue string) *Sample {
		for i := range m.Samples {
			s := &m.Samples[i]
			if s.Name != name {
				continue
			}
			if labelName == "" {
				return s
			}
			if v, ok := s.Label(labelName); ok && v == labelValue {
				return s
			}
		}
		return nil
	}
	if s := find("pm_requests_total", "code", "200"); s == nil || s.Value != 7 {
		t.Fatalf("pm_requests_total{code=200} = %+v, want 7", s)
	}
	// Escaped label values round-trip through write→parse.
	if s := find("pm_requests_total", "code", `we"ird\label`+"\n"); s == nil || s.Value != 1 {
		t.Fatalf("escaped label sample missing: %+v", m.Samples)
	}
	if s := find("pm_temp", "", ""); s == nil || s.Value != -3.5 {
		t.Fatalf("pm_temp = %+v, want -3.5", s)
	}
	if s := find("pm_lat_seconds_count", "", ""); s == nil || s.Value != 2 {
		t.Fatalf("histogram count sample = %+v, want 2", s)
	}
	if m.Family("pm_lat_seconds_bucket") != "pm_lat_seconds" || m.Family("pm_temp") != "pm_temp" {
		t.Fatalf("Family mapping wrong")
	}

	// HistogramFrom inverts the cumulative rendering exactly.
	snap, err := m.HistogramFrom("pm_lat_seconds")
	if err != nil {
		t.Fatal(err)
	}
	want := h.Snapshot()
	if snap.Count != want.Count || snap.Sum != want.Sum {
		t.Fatalf("HistogramFrom count/sum = %d/%v, want %d/%v", snap.Count, snap.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if snap.Counts[i] != want.Counts[i] {
			t.Fatalf("HistogramFrom bucket %d = %d, want %d", i, snap.Counts[i], want.Counts[i])
		}
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	start := reg.Gauge("wanac_process_start_time_seconds", "").Value()
	if start <= 0 {
		t.Fatalf("start time = %v, want > 0", start)
	}
	RegisterBuildInfo(reg) // idempotent: start time must not move
	if got := reg.Gauge("wanac_process_start_time_seconds", "").Value(); got != start {
		t.Fatalf("start time moved on re-registration: %v -> %v", start, got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "wanac_build_info{") || !strings.Contains(text, `go_version="go`) {
		t.Fatalf("build info exposition missing fields:\n%s", text)
	}
	if _, err := ParseText(strings.NewReader(text)); err != nil {
		t.Fatalf("build info exposition does not parse: %v", err)
	}
}
