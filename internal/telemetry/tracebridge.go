package telemetry

import (
	"sync/atomic"

	"wanac/internal/trace"
)

// eventBridge wraps a trace.Tracer and counts every emitted event into a
// registry family, so simulated and live runs share one event taxonomy:
// the collector tracer used for experiments and the log tracer used by
// acnode both feed wanac_trace_events_total{type=...}.
type eventBridge struct {
	inner trace.Tracer
	vec   CounterVec
	// cache holds pre-resolved per-type counters so the Emit hot path
	// never calls With (which locks and allocates). EventType is a small
	// uint8; types beyond the cache fall back to With.
	cache [64]atomic.Pointer[Counter]
}

// InstrumentTracer returns a tracer that forwards every event to inner
// after counting it in reg as wanac_trace_events_total{type=...}.
func InstrumentTracer(reg *Registry, inner trace.Tracer) trace.Tracer {
	return &eventBridge{
		inner: inner,
		vec:   reg.CounterVec("wanac_trace_events_total", "Protocol trace events by type (see internal/trace).", "type"),
	}
}

// Emit implements trace.Tracer.
func (b *eventBridge) Emit(e trace.Event) {
	i := int(e.Type)
	if i < len(b.cache) {
		c := b.cache[i].Load()
		if c == nil {
			c = b.vec.With(e.Type.String())
			b.cache[i].Store(c)
		}
		c.Inc()
	} else {
		b.vec.With(e.Type.String()).Inc()
	}
	b.inner.Emit(e)
}
