package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// A Label is one name="value" pair on a parsed sample, in exposition
// order, with escape sequences decoded.
type Label struct {
	Name, Value string
}

// A Sample is one parsed series line. Name is the series name as
// exposed, including histogram _bucket/_sum/_count suffixes; histogram
// bucket samples carry their "le" bound as an ordinary label.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label and whether it is present.
func (s Sample) Label(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Metrics is a fully parsed text exposition: every declared family's
// type and help, plus every sample line in input order.
type Metrics struct {
	Types   map[string]string
	Help    map[string]string
	Samples []Sample
}

// Family returns the base family name for a series name: histogram
// component suffixes (_bucket/_sum/_count) are stripped when the base is
// a declared histogram or summary family.
func (m *Metrics) Family(series string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(series, suf); base != series {
			if t := m.Types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return series
}

// ParseMetrics reads Prometheus text exposition and returns the declared
// families and every sample with decoded labels and value. It applies
// the same strict validation as ParseText (which is a view over this
// parser): the first malformed line, sample without a preceding # TYPE
// declaration, or unparseable value is an error.
func ParseMetrics(r io.Reader) (*Metrics, error) {
	m := &Metrics{
		Types: make(map[string]string),
		Help:  make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, m); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		s, err := parseSample(line, m.Types)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// unescapeLabel decodes the \\, \", and \n escapes scanLabels validated.
func unescapeLabel(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \"
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// HistogramFrom reconstructs a snapshot from one histogram family's
// parsed samples: bucket series are summed per "le" bound across all
// label sets (cumulative counts add), then differenced back to
// per-bucket counts; _count and _sum series are summed likewise. It is
// the read-side inverse of the writer's cumulative rendering, used by
// fleet rollups. Returns an error when the family has no bucket samples
// or the bucket counts are not monotonically non-decreasing.
func (m *Metrics) HistogramFrom(familyName string) (HistogramSnapshot, error) {
	if t := m.Types[familyName]; t != "histogram" {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: %q is %q, not a histogram", familyName, t)
	}
	byLe := make(map[float64]float64)
	var snap HistogramSnapshot
	for _, s := range m.Samples {
		switch s.Name {
		case familyName + "_bucket":
			leStr, ok := s.Label("le")
			if !ok {
				return HistogramSnapshot{}, fmt.Errorf("telemetry: %s_bucket sample without le label", familyName)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return HistogramSnapshot{}, fmt.Errorf("telemetry: bad le %q on %s_bucket", leStr, familyName)
			}
			byLe[le] += s.Value
		case familyName + "_sum":
			snap.Sum += s.Value
		}
	}
	if len(byLe) == 0 {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: no %s_bucket samples", familyName)
	}
	les := make([]float64, 0, len(byLe))
	for le := range byLe {
		les = append(les, le)
	}
	sort.Float64s(les) // +Inf sorts last
	if !math.IsInf(les[len(les)-1], +1) {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: %s has no +Inf bucket", familyName)
	}
	prev := 0.0
	for _, le := range les {
		cum := byLe[le]
		if cum < prev {
			return HistogramSnapshot{}, fmt.Errorf("telemetry: %s bucket counts not cumulative at le=%v", familyName, le)
		}
		if !math.IsInf(le, +1) {
			snap.Upper = append(snap.Upper, le)
		}
		snap.Counts = append(snap.Counts, uint64(cum-prev))
		prev = cum
	}
	snap.Count = uint64(byLe[les[len(les)-1]])
	return snap, nil
}
