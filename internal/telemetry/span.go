package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// A Span is one step in the lifecycle of a single access check,
// correlated across host and managers by Trace: the host stamps the
// check's trace ID into every wire Query, managers echo it in their
// Response, and both sides record spans keyed by it. Joining all spans
// with one trace ID reconstructs the full round: cache lookup, each
// query round's fan-out, every manager's reply (or the timeout), and the
// final quorum decision or default allow.
type Span struct {
	Trace uint64    `json:"trace"`            // check-wide correlation ID
	Node  string    `json:"node"`             // emitting node
	Kind  string    `json:"kind"`             // check|round|reply|timeout|decision|query
	Time  time.Time `json:"time"`             // emission time (node-local clock)
	App   string    `json:"app,omitempty"`    //
	User  string    `json:"user,omitempty"`   //
	Right string    `json:"right,omitempty"`  //
	Peer  string    `json:"peer,omitempty"`   // reply/query: the other end
	Round int       `json:"round,omitempty"`  // 1-based query round (attempt)
	Nonce uint64    `json:"nonce,omitempty"`  // per-round wire nonce
	DurNs int64     `json:"dur_ns,omitempty"` // decision: time since the check began
	Note  string    `json:"note,omitempty"`   // outcome or free-form detail
}

// A SpanRecorder receives spans. Implementations must be safe for
// concurrent use.
type SpanRecorder interface {
	RecordSpan(Span)
}

// SpanBuffer collects spans in memory, for tests and the simulator.
type SpanBuffer struct {
	mu    sync.Mutex
	spans []Span
}

// RecordSpan appends s.
func (b *SpanBuffer) RecordSpan(s Span) {
	b.mu.Lock()
	b.spans = append(b.spans, s)
	b.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (b *SpanBuffer) Spans() []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Span(nil), b.spans...)
}

// ByTrace returns the recorded spans with the given trace ID, in
// recording order.
func (b *SpanBuffer) ByTrace(trace uint64) []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Span
	for _, s := range b.spans {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// SpanWriter streams spans as JSON Lines (one object per line) to an
// io.Writer — the backing for acnode's -telemetry.jsonl flag. Encoding
// errors are counted, not propagated: telemetry must never take down
// the protocol path.
type SpanWriter struct {
	mu     sync.Mutex
	enc    *json.Encoder
	errs   int
	closed bool
}

// NewSpanWriter returns a SpanWriter emitting to w. The caller owns w's
// lifecycle (flush/close).
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{enc: json.NewEncoder(w)}
}

// RecordSpan writes one JSONL record. Spans recorded after Close are
// dropped and counted by Errors, never written — so a caller that
// flushes and closes the underlying writer after Close never races a
// late emitter into a torn line.
func (w *SpanWriter) RecordSpan(s Span) {
	w.mu.Lock()
	if w.closed {
		w.errs++
		w.mu.Unlock()
		return
	}
	if err := w.enc.Encode(s); err != nil {
		w.errs++
	}
	w.mu.Unlock()
}

// Close stops the writer: concurrent and subsequent RecordSpan calls
// become counted drops. It does not close the underlying io.Writer
// (the caller owns that) and is safe to call more than once.
func (w *SpanWriter) Close() error {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	return nil
}

// Errors reports how many spans failed to encode or write, plus any
// dropped after Close.
func (w *SpanWriter) Errors() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.errs
}

// ReadSpans decodes a JSONL span stream, e.g. a -telemetry.jsonl file.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}
