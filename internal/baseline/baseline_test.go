package baseline

import (
	"testing"
	"time"

	"wanac/internal/core"
	"wanac/internal/sim"
	"wanac/internal/simnet"
	"wanac/internal/wire"
)

const app wire.AppID = "app"

func addOp(user wire.UserID) wire.AdminOp {
	return wire.AdminOp{Op: wire.OpAdd, App: app, User: user, Right: wire.RightUse}
}

func revokeOp(user wire.UserID) wire.AdminOp {
	return wire.AdminOp{Op: wire.OpRevoke, App: app, User: user, Right: wire.RightUse}
}

func newNet() (*simnet.Network, *simnet.Scheduler) {
	s := simnet.NewScheduler()
	return simnet.New(s, simnet.Config{}), s
}

func TestECPropagation(t *testing.T) {
	net, sched := newNet()
	menv := sim.NewEnv("m0", net)
	henv := sim.NewEnv("h0", net)
	mgr := NewECManager("m0", menv, ECConfig{Peers: []wire.NodeID{"h0"}, GossipEvery: time.Second})
	host := NewECHost("h0", henv)
	net.Attach("m0", mgr)
	net.Attach("h0", host)

	mgr.Submit(addOp("alice"))
	sched.RunFor(time.Second)
	if !host.Check(app, "alice", wire.RightUse) {
		t.Fatal("grant did not propagate")
	}
	if host.Check(app, "bob", wire.RightUse) {
		t.Fatal("unknown user allowed")
	}

	mgr.Submit(revokeOp("alice"))
	sched.RunFor(time.Second)
	if host.Check(app, "alice", wire.RightUse) {
		t.Fatal("revoke did not propagate")
	}
}

// TestECUnboundedRevocation demonstrates the property the paper criticizes
// (§4.2): under a partition the eventual-consistency host honors a revoked
// right indefinitely — there is no Te after which access stops.
func TestECUnboundedRevocation(t *testing.T) {
	net, sched := newNet()
	mgr := NewECManager("m0", sim.NewEnv("m0", net), ECConfig{Peers: []wire.NodeID{"h0"}, GossipEvery: time.Second})
	host := NewECHost("h0", sim.NewEnv("h0", net))
	net.Attach("m0", mgr)
	net.Attach("h0", host)

	mgr.Submit(addOp("alice"))
	sched.RunFor(time.Second)
	net.SetLink("m0", "h0", false)
	mgr.Submit(revokeOp("alice"))

	// Hours pass: the host still grants. (The comparable wanac deployment
	// would have expired the right after Te.)
	sched.RunFor(12 * time.Hour)
	if !host.Check(app, "alice", wire.RightUse) {
		t.Fatal("EC host revoked without connectivity — impossible")
	}

	// Availability stays perfect throughout: local checks never block.
	if !host.Check(app, "alice", wire.RightUse) {
		t.Fatal("EC host unavailable")
	}

	net.Heal()
	sched.RunFor(3 * time.Second) // next anti-entropy round
	if host.Check(app, "alice", wire.RightUse) {
		t.Fatal("revoke did not propagate after heal")
	}
}

func TestECLastWriterWins(t *testing.T) {
	net, sched := newNet()
	m0 := NewECManager("m0", sim.NewEnv("m0", net), ECConfig{Peers: []wire.NodeID{"m1", "h0"}, GossipEvery: time.Second})
	m1 := NewECManager("m1", sim.NewEnv("m1", net), ECConfig{Peers: []wire.NodeID{"m0", "h0"}, GossipEvery: time.Second})
	host := NewECHost("h0", sim.NewEnv("h0", net))
	net.Attach("m0", m0)
	net.Attach("m1", m1)
	net.Attach("h0", host)

	// m0 grants at t, m1 revokes strictly later: revoke must win everywhere
	// regardless of gossip arrival order.
	m0.Submit(addOp("alice"))
	sched.RunFor(time.Second)
	m1.Submit(revokeOp("alice"))
	sched.RunFor(5 * time.Second)

	if m0.Has(app, "alice", wire.RightUse) || m1.Has(app, "alice", wire.RightUse) {
		t.Error("managers disagree with LWW outcome")
	}
	if host.Check(app, "alice", wire.RightUse) {
		t.Error("host kept the older grant")
	}
}

func TestLWWTieBreak(t *testing.T) {
	s := newLWWState()
	at := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	a := wire.Update{Seq: wire.UpdateSeq{Origin: "m1", Counter: 1}, Op: wire.OpAdd, App: app, User: "u", Right: wire.RightUse, Issued: at}
	b := wire.Update{Seq: wire.UpdateSeq{Origin: "m2", Counter: 1}, Op: wire.OpRevoke, App: app, User: "u", Right: wire.RightUse, Issued: at}
	// Same timestamp: higher origin wins, in either merge order.
	s.merge(a)
	s.merge(b)
	if s.has(app, "u", wire.RightUse) {
		t.Error("tie-break picked lower origin (merge order a,b)")
	}
	s2 := newLWWState()
	s2.merge(b)
	s2.merge(a)
	if s2.has(app, "u", wire.RightUse) {
		t.Error("tie-break not symmetric (merge order b,a)")
	}
	// Invalid rights never merge.
	if s.merge(wire.Update{Op: wire.OpAdd, Right: wire.Right(9)}) {
		t.Error("invalid right merged")
	}
}

func TestFullReplicationCompletion(t *testing.T) {
	net, sched := newNet()
	hosts := []wire.NodeID{"h0", "h1", "h2"}
	mgr := NewFullRepManager("m0", sim.NewEnv("m0", net), FullRepConfig{
		Targets: hosts, Retry: time.Second,
	})
	net.Attach("m0", mgr)
	var hs []*FullRepHost
	for _, id := range hosts {
		h := NewFullRepHost(id, sim.NewEnv(id, net))
		net.Attach(id, h)
		hs = append(hs, h)
	}

	var completed, result bool
	mgr.Submit(addOp("alice"), func(ok bool) { completed, result = true, ok })
	sched.RunFor(time.Second)
	if !completed || !result {
		t.Fatalf("completion = %v/%v", completed, result)
	}
	for i, h := range hs {
		if !h.Check(app, "alice", wire.RightUse) {
			t.Errorf("host %d missing update", i)
		}
	}
}

func TestFullReplicationBlockedByPartition(t *testing.T) {
	net, sched := newNet()
	mgr := NewFullRepManager("m0", sim.NewEnv("m0", net), FullRepConfig{
		Targets: []wire.NodeID{"h0", "h1"}, Retry: time.Second,
	})
	h0 := NewFullRepHost("h0", sim.NewEnv("h0", net))
	h1 := NewFullRepHost("h1", sim.NewEnv("h1", net))
	net.Attach("m0", mgr)
	net.Attach("h0", h0)
	net.Attach("h1", h1)
	net.SetLink("m0", "h1", false)

	var completed bool
	mgr.Submit(revokeOp("alice"), func(bool) { completed = true })
	sched.RunFor(30 * time.Second)
	if completed {
		t.Fatal("update completed despite unreachable host")
	}
	if !h0.Check(app, "alice", wire.RightUse) == false {
		// h0 has only the revoke (never had the grant): must deny.
		t.Log("h0 correctly denies")
	}

	net.Heal()
	sched.RunFor(5 * time.Second)
	if !completed {
		t.Fatal("persistent retransmission did not complete after heal")
	}
}

func TestFullReplicationGivesUpAfterMaxRetries(t *testing.T) {
	net, sched := newNet()
	mgr := NewFullRepManager("m0", sim.NewEnv("m0", net), FullRepConfig{
		Targets: []wire.NodeID{"h0"}, Retry: time.Second, MaxRetries: 3,
	})
	net.Attach("m0", mgr) // h0 never attached: permanently unreachable

	var completed, result bool
	mgr.Submit(addOp("alice"), func(ok bool) { completed, result = true, ok })
	sched.RunFor(time.Minute)
	if !completed || result {
		t.Fatalf("completion = %v/%v, want gave-up (true/false)", completed, result)
	}
}

func TestLocalOnlyCheckConsultsAllManagers(t *testing.T) {
	net, sched := newNet()
	m0 := NewLocalManager("m0", sim.NewEnv("m0", net))
	m1 := NewLocalManager("m1", sim.NewEnv("m1", net))
	net.Attach("m0", m0)
	net.Attach("m1", m1)
	host := NewLocalHost("h0", sim.NewEnv("h0", net), []wire.NodeID{"m0", "m1"}, time.Second)
	net.Attach("h0", host)

	// Grant recorded only at m0 (that is the whole point of option 3).
	m0.Submit(addOp("alice"))
	sched.RunFor(10 * time.Millisecond)
	if m1.Has(app, "alice", wire.RightUse) {
		t.Fatal("local-only update leaked to m1")
	}

	var allowed, done bool
	host.Check(app, "alice", wire.RightUse, func(a bool) { allowed, done = a, true })
	sched.RunFor(2 * time.Second)
	if !done || !allowed {
		t.Fatalf("check = %v/%v, want allowed via m0", done, allowed)
	}

	// A later revoke recorded only at m1 must override m0's grant.
	sched.RunFor(time.Second)
	m1.Submit(revokeOp("alice"))
	var allowed2, done2 bool
	host.Check(app, "alice", wire.RightUse, func(a bool) { allowed2, done2 = a, true })
	sched.RunFor(2 * time.Second)
	if !done2 || allowed2 {
		t.Fatalf("check = %v/%v, want denied via m1's newer revoke", done2, allowed2)
	}
}

// TestLocalOnlyStaleGrantWhenRevokerUnreachable shows why option 3 is
// rejected: if the manager holding the newest revoke is unreachable, the
// host combines only stale information and honors the revoked grant.
func TestLocalOnlyStaleGrantWhenRevokerUnreachable(t *testing.T) {
	net, sched := newNet()
	m0 := NewLocalManager("m0", sim.NewEnv("m0", net))
	m1 := NewLocalManager("m1", sim.NewEnv("m1", net))
	net.Attach("m0", m0)
	net.Attach("m1", m1)
	host := NewLocalHost("h0", sim.NewEnv("h0", net), []wire.NodeID{"m0", "m1"}, time.Second)
	net.Attach("h0", host)

	m0.Submit(addOp("alice"))
	sched.RunFor(time.Second)
	m1.Submit(revokeOp("alice"))
	net.SetLink("h0", "m1", false) // the revoker becomes unreachable

	var allowed, done bool
	host.Check(app, "alice", wire.RightUse, func(a bool) { allowed, done = a, true })
	sched.RunFor(2 * time.Second)
	if !done {
		t.Fatal("check did not resolve")
	}
	if !allowed {
		t.Fatal("expected stale allow: revoker unreachable, grant visible")
	}
}

func TestLocalHostOneCheckAtATime(t *testing.T) {
	net, sched := newNet()
	m0 := NewLocalManager("m0", sim.NewEnv("m0", net))
	net.Attach("m0", m0)
	host := NewLocalHost("h0", sim.NewEnv("h0", net), []wire.NodeID{"m0"}, time.Second)
	net.Attach("h0", host)

	first, second := false, false
	var secondAllowed bool
	host.Check(app, "u", wire.RightUse, func(bool) { first = true })
	host.Check(app, "u", wire.RightUse, func(a bool) { second, secondAllowed = true, a })
	if !second || secondAllowed {
		t.Fatal("overlapping check should fail fast")
	}
	sched.RunFor(2 * time.Second)
	if !first {
		t.Fatal("first check never resolved")
	}
}

func TestECInvokeReply(t *testing.T) {
	net, sched := newNet()
	mgr := NewECManager("m0", sim.NewEnv("m0", net), ECConfig{Peers: []wire.NodeID{"h0"}})
	host := NewECHost("h0", sim.NewEnv("h0", net))
	net.Attach("m0", mgr)
	net.Attach("h0", host)
	mgr.Submit(addOp("alice"))
	sched.RunFor(time.Second)

	var reply wire.InvokeReply
	got := false
	net.Attach("agent", simnet.HandlerFunc(func(_ wire.NodeID, msg wire.Message) {
		if r, ok := msg.(wire.InvokeReply); ok {
			reply, got = r, true
		}
	}))
	net.Send("agent", "h0", wire.Invoke{App: app, User: "alice", ReqID: 7})
	sched.RunFor(time.Second)
	if !got || !reply.Allowed || reply.ReqID != 7 {
		t.Fatalf("reply = %+v got=%v", reply, got)
	}
	net.Send("agent", "h0", wire.Invoke{App: app, User: "mallory", ReqID: 8})
	got = false
	sched.RunFor(time.Second)
	if !got || reply.Allowed {
		t.Fatalf("mallory reply = %+v", reply)
	}
}

// Interface conformance for the handler shape used by the simulator.
var (
	_ simnet.Handler = (*ECManager)(nil)
	_ simnet.Handler = (*ECHost)(nil)
	_ simnet.Handler = (*FullRepManager)(nil)
	_ simnet.Handler = (*FullRepHost)(nil)
	_ simnet.Handler = (*LocalManager)(nil)
	_ simnet.Handler = (*LocalHost)(nil)
	_ core.Env       = (*sim.Env)(nil)
)

func TestFullRepManagerHasAndPeers(t *testing.T) {
	net, sched := newNet()
	m0 := NewFullRepManager("m0", sim.NewEnv("m0", net), FullRepConfig{
		Targets: []wire.NodeID{"m1"}, Retry: time.Second,
	})
	m1 := NewFullRepManager("m1", sim.NewEnv("m1", net), FullRepConfig{Retry: time.Second})
	net.Attach("m0", m0)
	net.Attach("m1", m1)

	var completed bool
	m0.Submit(addOp("alice"), func(bool) { completed = true })
	sched.RunFor(2 * time.Second)
	if !completed {
		t.Fatal("peer manager did not ack")
	}
	if !m0.Has(app, "alice", wire.RightUse) || !m1.Has(app, "alice", wire.RightUse) {
		t.Error("peer replication failed")
	}
	// Unknown messages are ignored without panic.
	m1.HandleMessage("x", wire.Heartbeat{})
	// Stale acks are ignored.
	m0.HandleMessage("m1", wire.UpdateAck{Seq: wire.UpdateSeq{Origin: "m0", Counter: 99}})
}

func TestFullRepSubmitNoTargets(t *testing.T) {
	net, _ := newNet()
	m := NewFullRepManager("m0", sim.NewEnv("m0", net), FullRepConfig{})
	done, ok := false, false
	m.Submit(addOp("u"), func(completed bool) { done, ok = true, completed })
	if !done || !ok {
		t.Fatal("empty-target submit should complete immediately")
	}
	if m.pendingCount() != 0 {
		t.Error("pending map not empty")
	}
}

func TestLocalHostDefaultTimeout(t *testing.T) {
	net, _ := newNet()
	h := NewLocalHost("h0", sim.NewEnv("h0", net), []wire.NodeID{"m0"}, 0)
	if h.timeout != core.DefaultQueryTimeout {
		t.Errorf("timeout = %v", h.timeout)
	}
}

func TestLocalManagerIgnoresNonQuery(t *testing.T) {
	net, sched := newNet()
	m := NewLocalManager("m0", sim.NewEnv("m0", net))
	net.Attach("m0", m)
	m.HandleMessage("x", wire.Heartbeat{}) // must not panic or reply
	sched.RunFor(time.Second)
	if st := net.Stats(); st.Sent != 0 {
		t.Errorf("sent = %d", st.Sent)
	}
}

func TestLWWSnapshotSorted(t *testing.T) {
	s := newLWWState()
	at := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	s.merge(wire.Update{Seq: wire.UpdateSeq{Origin: "m", Counter: 1}, Op: wire.OpAdd, App: "b", User: "z", Right: wire.RightUse, Issued: at})
	s.merge(wire.Update{Seq: wire.UpdateSeq{Origin: "m", Counter: 2}, Op: wire.OpAdd, App: "a", User: "y", Right: wire.RightManage, Issued: at})
	s.merge(wire.Update{Seq: wire.UpdateSeq{Origin: "m", Counter: 3}, Op: wire.OpAdd, App: "a", User: "y", Right: wire.RightUse, Issued: at})
	snap := s.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].App != "a" || snap[0].Right != wire.RightUse || snap[2].App != "b" {
		t.Errorf("snapshot order: %+v", snap)
	}
}
