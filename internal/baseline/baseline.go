// Package baseline implements the alternative access-control designs the
// paper positions itself against, so the evaluation can compare them on the
// same simulated network:
//
//   - Eventual consistency (§4.2, Samarati et al. [23]): every replica holds
//     the full ACL; updates spread by last-writer-wins gossip; checks are
//     always local (perfect availability) but revocation has NO time bound
//     under partitions. Types: ECManager, ECHost.
//
//   - Full replication (§3, option 1): managers push every update to every
//     application host with persistent retransmission; checks are local.
//     Types: FullRepManager, FullRepHost.
//
//   - Local-only updates (§3, option 3): an update is recorded only at the
//     issuing manager; a check must consult every manager and combine what
//     they know. Types: LocalManager, LocalHost.
//
//   - Centralized: the degenerate M=1 case of the main protocol; built with
//     core.NewManager/NewHost directly, no extra types needed.
//
// All node types implement the same simnet handler shape as the core nodes
// and run under the same Env abstraction.
package baseline

import (
	"sort"
	"time"

	"wanac/internal/core"
	"wanac/internal/wire"
)

// opKey identifies the ACL fact an operation is about.
type opKey struct {
	app   wire.AppID
	user  wire.UserID
	right wire.Right
}

// lwwState is a compacted operation log: the latest operation per key,
// ordered by Issued timestamp with (origin, counter) as tie-breaker. It is
// the replica state of the eventual-consistency and local-only baselines.
type lwwState struct {
	ops map[opKey]wire.Update
}

func newLWWState() *lwwState {
	return &lwwState{ops: make(map[opKey]wire.Update)}
}

// newer reports whether a should supersede b.
func newer(a, b wire.Update) bool {
	if !a.Issued.Equal(b.Issued) {
		return a.Issued.After(b.Issued)
	}
	if a.Seq.Origin != b.Seq.Origin {
		return a.Seq.Origin > b.Seq.Origin
	}
	return a.Seq.Counter > b.Seq.Counter
}

// merge incorporates an operation, returning true if state changed.
func (s *lwwState) merge(op wire.Update) bool {
	if !op.Right.Valid() {
		return false
	}
	k := opKey{op.App, op.User, op.Right}
	cur, ok := s.ops[k]
	if ok && !newer(op, cur) {
		return false
	}
	s.ops[k] = op
	return true
}

// has reports whether the latest operation for the key is an Add.
func (s *lwwState) has(app wire.AppID, user wire.UserID, right wire.Right) bool {
	op, ok := s.ops[opKey{app, user, right}]
	return ok && op.Op == wire.OpAdd
}

// snapshot returns all operations sorted deterministically.
func (s *lwwState) snapshot() []wire.Update {
	out := make([]wire.Update, 0, len(s.ops))
	for _, op := range s.ops {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Right < b.Right
	})
	return out
}

// ECConfig configures the eventual-consistency replicas.
type ECConfig struct {
	// Peers are the other replicas (managers and hosts) to gossip with.
	Peers []wire.NodeID
	// GossipEvery is the anti-entropy interval. Zero disables periodic
	// gossip (state still spreads on each local update).
	GossipEvery time.Duration
}

// ECManager is an eventual-consistency replica that accepts updates.
type ECManager struct {
	id      wire.NodeID
	env     core.Env
	cfg     ECConfig
	state   *lwwState
	counter uint64
}

// NewECManager creates an eventual-consistency manager replica and starts
// its anti-entropy loop.
func NewECManager(id wire.NodeID, env core.Env, cfg ECConfig) *ECManager {
	m := &ECManager{id: id, env: env, cfg: cfg, state: newLWWState()}
	if cfg.GossipEvery > 0 {
		m.scheduleGossip()
	}
	return m
}

// Submit applies an operation locally and propagates it opportunistically.
// There is no quorum and no guarantee: consistency is eventual (§4.2: "no
// guarantees are made on when the information will be updated").
func (m *ECManager) Submit(op wire.AdminOp) {
	m.counter++
	upd := wire.Update{
		Seq:    wire.UpdateSeq{Origin: m.id, Counter: m.counter},
		Op:     op.Op,
		App:    op.App,
		User:   op.User,
		Right:  op.Right,
		Issued: m.env.Now(),
	}
	m.state.merge(upd)
	m.gossipNow()
}

// Has reports the local view.
func (m *ECManager) Has(app wire.AppID, user wire.UserID, right wire.Right) bool {
	return m.state.has(app, user, right)
}

func (m *ECManager) gossipNow() {
	msg := wire.Gossip{Ops: m.state.snapshot()}
	for _, p := range m.cfg.Peers {
		m.env.Send(p, msg)
	}
}

func (m *ECManager) scheduleGossip() {
	m.env.SetTimer(m.cfg.GossipEvery, func() {
		m.gossipNow()
		m.scheduleGossip()
	})
}

// HandleMessage merges incoming gossip.
func (m *ECManager) HandleMessage(_ wire.NodeID, msg wire.Message) {
	if g, ok := msg.(wire.Gossip); ok {
		for _, op := range g.Ops {
			m.state.merge(op)
		}
	}
}

// ECHost is an eventual-consistency replica serving access checks from its
// local replica: always available, never waiting on the network.
type ECHost struct {
	id    wire.NodeID
	env   core.Env
	state *lwwState
}

// NewECHost creates a host replica.
func NewECHost(id wire.NodeID, env core.Env) *ECHost {
	return &ECHost{id: id, env: env, state: newLWWState()}
}

// Check is a purely local decision: the availability of this baseline is 1
// by construction, which is exactly why its revocations are unbounded.
func (h *ECHost) Check(app wire.AppID, user wire.UserID, right wire.Right) bool {
	return h.state.has(app, user, right)
}

// HandleMessage merges gossip and answers Invoke traffic locally.
func (h *ECHost) HandleMessage(from wire.NodeID, msg wire.Message) {
	switch m := msg.(type) {
	case wire.Gossip:
		for _, op := range m.Ops {
			h.state.merge(op)
		}
	case wire.Invoke:
		allowed := h.Check(m.App, m.User, wire.RightUse)
		h.env.Send(from, wire.InvokeReply{App: m.App, ReqID: m.ReqID, Allowed: allowed})
	}
}

// FullRepConfig configures the full-replication manager.
type FullRepConfig struct {
	// Targets is every node (hosts and peer managers) that must receive
	// each update.
	Targets []wire.NodeID
	// Retry is the retransmission interval.
	Retry time.Duration
	// MaxRetries caps retransmission (0 = forever).
	MaxRetries int
}

// FullRepManager pushes every update to every host (§3 option 1):
// distributing "this information to all the hosts can be costly", which the
// message counters quantify.
type FullRepManager struct {
	id      wire.NodeID
	env     core.Env
	cfg     FullRepConfig
	state   *lwwState
	counter uint64
	pending map[wire.UpdateSeq]*frPending
}

type frPending struct {
	upd     wire.Update
	waiting map[wire.NodeID]struct{}
	retries int
	done    func(completed bool)
}

// NewFullRepManager creates a full-replication manager.
func NewFullRepManager(id wire.NodeID, env core.Env, cfg FullRepConfig) *FullRepManager {
	if cfg.Retry == 0 {
		cfg.Retry = core.DefaultUpdateRetry
	}
	return &FullRepManager{
		id: id, env: env, cfg: cfg,
		state:   newLWWState(),
		pending: make(map[wire.UpdateSeq]*frPending),
	}
}

// Submit applies the operation locally and pushes it to every target. done
// (optional) fires when every target has acknowledged — the point at which
// the update has fully "taken effect throughout the system" (§2.3's
// blocking semantics) — or when retransmission gives up (completed=false).
func (m *FullRepManager) Submit(op wire.AdminOp, done func(completed bool)) {
	m.counter++
	upd := wire.Update{
		Seq:    wire.UpdateSeq{Origin: m.id, Counter: m.counter},
		Op:     op.Op,
		App:    op.App,
		User:   op.User,
		Right:  op.Right,
		Issued: m.env.Now(),
	}
	m.state.merge(upd)
	p := &frPending{
		upd:     upd,
		waiting: make(map[wire.NodeID]struct{}, len(m.cfg.Targets)),
		done:    done,
	}
	for _, t := range m.cfg.Targets {
		p.waiting[t] = struct{}{}
	}
	m.pending[upd.Seq] = p
	if len(p.waiting) == 0 {
		m.complete(upd.Seq, true)
		return
	}
	m.transmit(p)
}

func (m *FullRepManager) transmit(p *frPending) {
	for t := range p.waiting {
		m.env.Send(t, p.upd)
	}
	seq := p.upd.Seq
	m.env.SetTimer(m.cfg.Retry, func() {
		q, ok := m.pending[seq]
		if !ok {
			return
		}
		q.retries++
		if m.cfg.MaxRetries > 0 && q.retries >= m.cfg.MaxRetries {
			m.complete(seq, false)
			return
		}
		m.transmit(q)
	})
}

func (m *FullRepManager) complete(seq wire.UpdateSeq, completed bool) {
	p, ok := m.pending[seq]
	if !ok {
		return
	}
	delete(m.pending, seq)
	if p.done != nil {
		p.done(completed)
	}
}

// Has reports the local view.
func (m *FullRepManager) Has(app wire.AppID, user wire.UserID, right wire.Right) bool {
	return m.state.has(app, user, right)
}

// pendingCount reports outstanding (not fully acknowledged) updates.
func (m *FullRepManager) pendingCount() int { return len(m.pending) }

// HandleMessage processes acks (and peer updates, so several FullRep
// managers can coexist).
func (m *FullRepManager) HandleMessage(from wire.NodeID, msg wire.Message) {
	switch mm := msg.(type) {
	case wire.UpdateAck:
		p, ok := m.pending[mm.Seq]
		if !ok {
			return
		}
		delete(p.waiting, from)
		if len(p.waiting) == 0 {
			m.complete(mm.Seq, true)
		}
	case wire.Update:
		m.state.merge(mm)
		m.env.Send(from, wire.UpdateAck{Seq: mm.Seq})
	}
}

// FullRepHost holds the fully replicated ACL and decides locally.
type FullRepHost struct {
	id    wire.NodeID
	env   core.Env
	state *lwwState
}

// NewFullRepHost creates a host replica.
func NewFullRepHost(id wire.NodeID, env core.Env) *FullRepHost {
	return &FullRepHost{id: id, env: env, state: newLWWState()}
}

// Check is local.
func (h *FullRepHost) Check(app wire.AppID, user wire.UserID, right wire.Right) bool {
	return h.state.has(app, user, right)
}

// HandleMessage applies pushed updates and acks them.
func (h *FullRepHost) HandleMessage(from wire.NodeID, msg wire.Message) {
	switch m := msg.(type) {
	case wire.Update:
		h.state.merge(m)
		h.env.Send(from, wire.UpdateAck{Seq: m.Seq})
	case wire.Invoke:
		allowed := h.Check(m.App, m.User, wire.RightUse)
		h.env.Send(from, wire.InvokeReply{App: m.App, ReqID: m.ReqID, Allowed: allowed})
	}
}

// LocalManager records updates only locally (§3 option 3). Queries return
// whatever this manager knows, including the op timestamp so the host can
// combine answers.
type LocalManager struct {
	id      wire.NodeID
	env     core.Env
	state   *lwwState
	counter uint64
}

// NewLocalManager creates a local-only manager.
func NewLocalManager(id wire.NodeID, env core.Env) *LocalManager {
	return &LocalManager{id: id, env: env, state: newLWWState()}
}

// Submit records the operation at this manager only.
func (m *LocalManager) Submit(op wire.AdminOp) {
	m.counter++
	m.state.merge(wire.Update{
		Seq:    wire.UpdateSeq{Origin: m.id, Counter: m.counter},
		Op:     op.Op,
		App:    op.App,
		User:   op.User,
		Right:  op.Right,
		Issued: m.env.Now(),
	})
}

// Has reports the local view.
func (m *LocalManager) Has(app wire.AppID, user wire.UserID, right wire.Right) bool {
	return m.state.has(app, user, right)
}

// HandleMessage answers queries with the locally known op for the key,
// encoded as a Gossip with zero or one entries (the host combines them).
func (m *LocalManager) HandleMessage(from wire.NodeID, msg wire.Message) {
	q, ok := msg.(wire.Query)
	if !ok {
		return
	}
	resp := wire.Gossip{}
	if op, ok := m.state.ops[opKey{q.App, q.User, q.Right}]; ok {
		// Smuggle the query nonce back in the counter-less slot: the host
		// correlates by key instead, so no nonce is needed here.
		resp.Ops = []wire.Update{op}
	}
	m.env.Send(from, resp)
}

// LocalHost checks rights by consulting every manager and combining their
// answers by op recency: the design the paper rejects because "checking
// access would in general involve communicating with all managers".
type LocalHost struct {
	id       wire.NodeID
	env      core.Env
	managers []wire.NodeID
	timeout  time.Duration
	pending  *localCheck
}

type localCheck struct {
	key       opKey
	best      wire.Update
	haveBest  bool
	responses int
	cb        func(allowed bool)
	timer     core.TimerHandle
}

// NewLocalHost creates a host for the local-only baseline.
func NewLocalHost(id wire.NodeID, env core.Env, managers []wire.NodeID, timeout time.Duration) *LocalHost {
	if timeout == 0 {
		timeout = core.DefaultQueryTimeout
	}
	return &LocalHost{id: id, env: env, managers: managers, timeout: timeout}
}

// Check queries all managers and, at the timeout, decides from the most
// recent operation reported (missing answers simply do not contribute —
// which is why this baseline can both deny legitimate users and honor stale
// grants when the issuing manager is unreachable). One check at a time.
func (h *LocalHost) Check(app wire.AppID, user wire.UserID, right wire.Right, cb func(allowed bool)) {
	if h.pending != nil {
		cb(false)
		return
	}
	c := &localCheck{key: opKey{app, user, right}, cb: cb}
	h.pending = c
	q := wire.Query{App: app, User: user, Right: right}
	for _, m := range h.managers {
		h.env.Send(m, q)
	}
	c.timer = h.env.SetTimer(h.timeout, func() { h.decide() })
}

func (h *LocalHost) decide() {
	c := h.pending
	if c == nil {
		return
	}
	h.pending = nil
	c.cb(c.haveBest && c.best.Op == wire.OpAdd)
}

// HandleMessage collects manager answers; once every manager has answered
// the decision is taken early.
func (h *LocalHost) HandleMessage(_ wire.NodeID, msg wire.Message) {
	g, ok := msg.(wire.Gossip)
	if !ok || h.pending == nil {
		return
	}
	c := h.pending
	c.responses++
	for _, op := range g.Ops {
		if (opKey{op.App, op.User, op.Right}) != c.key {
			continue
		}
		if !c.haveBest || newer(op, c.best) {
			c.best = op
			c.haveBest = true
		}
	}
	if c.responses >= len(h.managers) {
		if c.timer != nil {
			c.timer.Stop()
		}
		h.decide()
	}
}
