package wanac

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// updateGolden regenerates testdata/examples/*.golden from the current
// example output: go test -run TestExamplesRun -update
var updateGolden = flag.Bool("update", false, "rewrite example golden files from current output")

// TestExamplesRun executes every example binary end to end (each uses the
// virtual-time simulator, so runs are deterministic and complete in well
// under a second of wall time) and compares the full stdout against a
// golden file in testdata/examples/. A signature fragment is checked first
// so a drifted example fails with a readable message before the full diff.
// This keeps the examples compiling AND behaviourally correct — down to the
// exact timeline they print — as the library evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs all examples")
	}
	cases := []struct {
		dir  string
		want string // fragment that must appear in stdout
	}{
		{"quickstart", "during partition (t+Te+1s):  allowed=false"},
		{"stockquotes", "post-heal check on host 5: allowed=false"},
		{"corporate", "bound holds"},
		{"newspaper", "availability-first"},
		{"mobile", "16:31 still offline (past Te)"},
	}
	root := moduleRoot(t)
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("example %s output missing %q:\n%s", c.dir, c.want, out)
			}

			goldenPath := filepath.Join(root, "testdata", "examples", c.dir+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, out, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestExamplesRun -update`): %v", err)
			}
			if string(out) != string(golden) {
				t.Errorf("example %s output diverged from %s:\n%s",
					c.dir, goldenPath, diffLines(string(golden), string(out)))
			}
		})
	}
}

// diffLines renders a minimal first-divergence report: golden and got lines
// around the first mismatch, enough to localize a drift without a diff tool.
func diffLines(golden, got string) string {
	gl := strings.Split(golden, "\n")
	ol := strings.Split(got, "\n")
	n := len(gl)
	if len(ol) < n {
		n = len(ol)
	}
	for i := 0; i < n; i++ {
		if gl[i] != ol[i] {
			return "first divergence at line " + strconv.Itoa(i+1) +
				":\n  golden: " + gl[i] + "\n  got:    " + ol[i]
		}
	}
	return "line counts differ: golden " + strconv.Itoa(len(gl)) + ", got " + strconv.Itoa(len(ol))
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatal("go.mod not found")
		}
	}
}
