package wanac

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end (each uses the
// virtual-time simulator, so runs complete in well under a second of wall
// time) and sanity-checks a signature line of its output. This keeps the
// examples compiling AND behaviourally correct as the library evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs all examples")
	}
	cases := []struct {
		dir  string
		want string // fragment that must appear in stdout
	}{
		{"quickstart", "during partition (t+Te+1s):  allowed=false"},
		{"stockquotes", "post-heal check on host 5: allowed=false"},
		{"corporate", "bound holds"},
		{"newspaper", "availability-first"},
		{"mobile", "16:31 still offline (past Te)"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			cmd.Dir = moduleRoot(t)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("example %s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatal("go.mod not found")
		}
	}
}
