// Package wanac is a from-scratch implementation of the wide-area access
// control protocol of Hiltunen & Schlichting, "Access Control in Wide-Area
// Networks" (ICDCS 1997).
//
// The protocol keeps authoritative access control lists at a small set of
// manager nodes, caches grants at application hosts with time-based
// expiration (revocation is guaranteed within a bound Te even across
// network partitions), and uses check/update quorums so each application
// can tune its own point on the security/availability/performance tradeoff
// via four parameters: the number of managers M, the check quorum C, the
// expiration bound Te, and the attempt count R.
//
// This package is the public facade. Three ways in:
//
//   - Simulation: NewSimulation builds a complete deployment (managers,
//     hosts, users, partitions) on a deterministic virtual-time network —
//     see examples/quickstart.
//   - Live deployment: Listen("tcp"|"udp", ...) creates a production
//     transport node — per-peer send queues, reconnect with backoff, stats —
//     whose Env drives the same Host/Manager state machines over real
//     sockets — see cmd/acnode.
//   - Analysis: PA, PS, Curve, and BestC evaluate the §4.1 formulas for
//     parameter planning.
package wanac

import (
	"fmt"
	"time"

	"wanac/internal/auth"
	"wanac/internal/core"
	"wanac/internal/netcore"
	"wanac/internal/quorum"
	"wanac/internal/sim"
	"wanac/internal/simnet"
	"wanac/internal/tcpnet"
	"wanac/internal/trace"
	"wanac/internal/udpnet"
	"wanac/internal/vclock"
	"wanac/internal/wire"
)

// Identifier and message types.
type (
	// NodeID identifies a protocol participant.
	NodeID = wire.NodeID
	// AppID names an application under access control.
	AppID = wire.AppID
	// UserID identifies an authenticated user.
	UserID = wire.UserID
	// Right is an access right: RightUse or RightManage.
	Right = wire.Right
	// AdminOp is an Add/Revoke command (§2.3).
	AdminOp = wire.AdminOp
	// AdminReply reports acceptance and update-quorum progress.
	AdminReply = wire.AdminReply
)

// The two rights of the paper's model (§2.1).
const (
	RightUse    = wire.RightUse
	RightManage = wire.RightManage
)

// Admin operations.
const (
	OpAdd    = wire.OpAdd
	OpRevoke = wire.OpRevoke
)

// Core protocol types.
type (
	// Host is the application-host node (Figures 2-4).
	Host = core.Host
	// Manager is the manager node (§3.1, §3.3-3.4).
	Manager = core.Manager
	// Policy is a host-side tradeoff configuration.
	Policy = core.Policy
	// HostAppConfig wires an application into a host.
	HostAppConfig = core.HostAppConfig
	// ManagerAppConfig wires an application into a manager.
	ManagerAppConfig = core.ManagerAppConfig
	// Decision is the outcome of an access check.
	Decision = core.Decision
	// Env abstracts clock, transport, and timers for a node.
	Env = core.Env
	// Application is the wrapped application component (Figure 1).
	Application = core.Application
	// ApplicationFunc adapts a function to Application.
	ApplicationFunc = core.ApplicationFunc
	// Tracer receives protocol events.
	Tracer = trace.Tracer
	// Keyring maps users to signature verifiers.
	Keyring = auth.Keyring
)

// Policy presets (§2.3, §4.1).
var (
	// SecurityFirst denies when the check quorum is unreachable.
	SecurityFirst = core.SecurityFirst
	// AvailabilityFirst allows by default after R failed attempts
	// (Figure 4).
	AvailabilityFirst = core.AvailabilityFirst
	// Balanced picks C near M/2 so PA and PS both stay near 1.
	Balanced = core.Balanced
)

// NewHost creates an application-host node. tracer and keyring may be nil.
func NewHost(id NodeID, env Env, tracer Tracer, keyring *Keyring) *Host {
	return core.NewHost(id, env, tracer, keyring)
}

// NewManager creates a manager node. tracer and keyring may be nil.
func NewManager(id NodeID, env Env, tracer Tracer, keyring *Keyring) *Manager {
	return core.NewManager(id, env, tracer, keyring)
}

// NewKeyring returns an empty signature keyring.
func NewKeyring() *Keyring { return auth.NewKeyring() }

// Simulation types.
type (
	// Simulation is a fully wired virtual-time deployment.
	Simulation = sim.World
	// SimConfig describes the deployment to build.
	SimConfig = sim.Config
	// NetConfig parameterizes the simulated network.
	NetConfig = simnet.Config
)

// NewSimulation builds a simulated deployment: M managers with seeded ACLs,
// hosts enforcing the policy, an optional name service, all on a
// deterministic discrete-event network. Virtual time advances only through
// the returned world's Run/CheckSync helpers, so hours of protocol time
// simulate in milliseconds.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.Build(cfg) }

// SimManagerID and SimHostID name the nodes a Simulation creates.
var (
	SimManagerID = sim.ManagerID
	SimHostID    = sim.HostID
)

// Live transport facade.

// Transport is a live network endpoint for a protocol node. It implements
// Env (pass it to NewHost or NewManager) and adds the operational surface
// the transports share: an address book, a handler registration, a stats
// snapshot, and shutdown. Both *TCPNode and *UDPNode satisfy it.
//
// Sends never block the caller: each peer has a bounded outbound queue
// drained by its own writer goroutine, dead peers are redialed with
// jittered exponential backoff, and overflow drops the oldest frame
// (counted in Stats) — the protocol's retry machinery provides liveness,
// per the paper's unreliable-network model (§2.2).
type Transport interface {
	Env
	// ID returns the node id frames are stamped with.
	ID() NodeID
	// Addr returns the bound listen address.
	Addr() string
	// AddPeer registers (or re-points) the address for a peer id.
	AddPeer(id NodeID, addr string) error
	// SetHandler installs the protocol node receiving inbound messages.
	SetHandler(h TransportHandler)
	// Stats returns a snapshot of the transport's counters and health.
	Stats() TransportStats
	// Close drains outbound queues and shuts the node down.
	Close() error
}

type (
	// TransportHandler receives inbound messages (a Host or Manager).
	TransportHandler = netcore.Handler
	// TransportStats is a snapshot of transport counters, queue depth, and
	// peer health.
	TransportStats = netcore.TransportStats
)

// Overload-protection configuration (manager-side admission control).
type (
	// OverloadConfig is a manager application's complete overload-protection
	// configuration: token-bucket admission, the adaptive-Te controller, and
	// the Retry-After clamp. Set it on ManagerAppConfig.Overload, or build
	// it from options with NewOverloadConfig.
	OverloadConfig = core.OverloadConfig
	// RateLimitConfig bounds query admission with token buckets, per
	// application and per source host.
	RateLimitConfig = core.RateLimitConfig
	// AdaptiveTeConfig widens the effective Te under sustained overload, up
	// to a stated Max — the paper's O(C/Te) overhead knob (§4.1) turned
	// automatically.
	AdaptiveTeConfig = core.AdaptiveTeConfig
)

// Option tunes a wanac node. One option set covers both layers of the
// stack: transport options shape the endpoint a Listen call creates
// (queues, batching, reconnect, stats), and admission options shape the
// OverloadConfig that NewOverloadConfig folds for a manager application.
// Options that do not apply to the consumer are inert — a single []Option
// can describe a whole node and be handed to both constructors.
type Option func(*settings)

type settings struct {
	transport []netcore.Option
	overload  OverloadConfig
}

func buildSettings(opts []Option) *settings {
	s := &settings{}
	for _, o := range opts {
		o(s)
	}
	return s
}

func transportOpt(o netcore.Option) Option {
	return func(s *settings) { s.transport = append(s.transport, o) }
}

// WithQueueDepth bounds each peer's outbound bulk-lane queue (default 128
// frames); overflow drops the oldest frame.
func WithQueueDepth(n int) Option { return transportOpt(netcore.WithQueueDepth(n)) }

// WithLaneDepth bounds each peer's outbound high-priority lane (revocations,
// updates, admin, heartbeats — defaults to the queue depth). The high lane
// is drained before the bulk lane and overflows only into itself, so a bulk
// query flood can never evict control traffic.
func WithLaneDepth(n int) Option { return transportOpt(netcore.WithLaneDepth(n)) }

// WithMaxBatch bounds how many queued messages one writer flush coalesces
// into a single wire write (default 64). Batching is opportunistic — a
// flush takes whatever is queued at that instant and never waits for more,
// so it adds no latency; under load, same-peer messages share one frame
// header and one write syscall. 1 disables coalescing.
func WithMaxBatch(n int) Option { return transportOpt(netcore.WithMaxBatch(n)) }

// WithBackoff sets the reconnect backoff range: delays double from min to
// max with jitter (defaults 50ms to 3s).
func WithBackoff(min, max time.Duration) Option {
	return transportOpt(netcore.WithBackoff(min, max))
}

// WithDialTimeout bounds each connection attempt (default 1s).
func WithDialTimeout(d time.Duration) Option { return transportOpt(netcore.WithDialTimeout(d)) }

// WithStatsInterval enables periodic publication of TransportStats (to the
// log, or to a WithStatsSink function). Zero, the default, disables it.
func WithStatsInterval(d time.Duration) Option {
	return transportOpt(netcore.WithStatsInterval(d))
}

// WithStatsSink directs periodic stats snapshots to fn instead of the log.
func WithStatsSink(fn func(TransportStats)) Option {
	return transportOpt(netcore.WithStatsSink(fn))
}

// WithPeerStateSink invokes fn on every peer health transition with the new
// state name ("connecting", "up", "backoff"). acnode feeds these into its
// flight recorder so transport flaps appear on failure timelines; the
// callback must be fast and must not call back into the transport.
func WithPeerStateSink(fn func(peer NodeID, state string)) Option {
	return transportOpt(netcore.WithStateSink(func(peer NodeID, state netcore.State) {
		fn(peer, state.String())
	}))
}

// WithRateLimit bounds query admission at a manager with token buckets (per
// application and per source host). Queries over budget are answered with a
// Busy reply carrying Retry-After; hosts defer the round and retry with
// jittered backoff instead of hammering. Consumed by NewOverloadConfig.
func WithRateLimit(rl RateLimitConfig) Option {
	return func(s *settings) { s.overload.RateLimit = rl }
}

// WithAdaptiveTe enables the adaptive-Te controller: while the rate limiter
// sheds, the effective Te widens (longer grants, longer host cache
// residency, less re-verification traffic) up to at.Max, then decays back
// once the overload clears. at.Max is the revocation bound the deployment
// actually promises. Consumed by NewOverloadConfig.
func WithAdaptiveTe(at AdaptiveTeConfig) Option {
	return func(s *settings) { s.overload.AdaptiveTe = at }
}

// WithMaxRetryAfter clamps the Retry-After advertised in Busy replies
// (default 5s). Consumed by NewOverloadConfig.
func WithMaxRetryAfter(d time.Duration) Option {
	return func(s *settings) { s.overload.MaxRetryAfter = d }
}

// NewOverloadConfig folds the admission-control options (WithRateLimit,
// WithAdaptiveTe, WithMaxRetryAfter) into an OverloadConfig for
// ManagerAppConfig.Overload. Transport options in opts are inert here.
func NewOverloadConfig(opts ...Option) OverloadConfig {
	return buildSettings(opts).overload
}

// Listen starts a live transport node on network "tcp" or "udp". TCP gives
// ordered streams with reconnect; UDP is the most literal realization of
// the paper's network model — nothing below the protocol retransmits.
// Admission options in opts are inert here (see NewOverloadConfig).
func Listen(network string, id NodeID, addr string, opts ...Option) (Transport, error) {
	cfg := netcore.BuildConfig(buildSettings(opts).transport...)
	switch network {
	case "tcp":
		return tcpnet.ListenConfig(id, addr, cfg)
	case "udp":
		return udpnet.ListenConfig(id, addr, cfg)
	default:
		return nil, fmt.Errorf("wanac: unknown network %q (want \"tcp\" or \"udp\")", network)
	}
}

// TCPNode is a live TCP transport endpoint implementing Env.
type TCPNode = tcpnet.Node

// UDPNode is a live UDP transport endpoint implementing Env — the most
// literal realization of the paper's unreliable network model (§2.2):
// nothing below the protocol retransmits.
type UDPNode = udpnet.Node

// Analysis re-exports (§4.1).

// PA returns the availability probability PA(C) for M managers with
// per-pair inaccessibility pi.
func PA(m, c int, pi float64) (float64, error) { return quorum.PA(m, c, pi) }

// PS returns the security probability PS(C).
func PS(m, c int, pi float64) (float64, error) { return quorum.PS(m, c, pi) }

// TradeoffPoint is one (C, PA, PS) point of the Figure 5 curve.
type TradeoffPoint = quorum.Point

// Curve evaluates PA and PS for every C in [1, M] (Figure 5).
func Curve(m int, pi float64) ([]TradeoffPoint, error) { return quorum.Curve(m, pi) }

// BestC returns the check quorum maximizing min(PA, PS).
func BestC(m int, pi float64) (TradeoffPoint, error) { return quorum.BestC(m, pi) }

// UpdateQuorum returns M-C+1, the update quorum implied by check quorum C.
func UpdateQuorum(m, c int) int { return quorum.UpdateQuorum(m, c) }

// Planning types (§4.1's deployment guidance).
type (
	// PlanTargets are availability/security goals for PlanParams.
	PlanTargets = quorum.Targets
	// Plan is a recommended (M, C) configuration.
	Plan = quorum.Plan
)

// PlanParams finds the smallest manager set and cheapest check quorum that
// meet the targets, growing M when needed (§4.1: "increase the cardinality
// of this set").
func PlanParams(t PlanTargets) (Plan, error) { return quorum.PlanParams(t) }

// ExpirationPeriod converts the revocation bound Te into the local cache
// expiration period te = Te*b under clock-rate bound b (§3.2).
func ExpirationPeriod(te time.Duration, b float64) time.Duration {
	return vclock.ExpirationPeriod(te, b)
}
